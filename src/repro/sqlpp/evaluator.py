"""SQL++ evaluation with per-batch access plans (Model 2 semantics).

The interpreter evaluates any expression of the subset against the stored
catalog.  Its crucial property for the paper is *how* it accesses reference
datasets:

* **batch-cached hash access** — an equality-correlated subquery over a
  dataset without a matching index scans the dataset once per
  :class:`EvaluationContext` generation and builds an in-memory hash table
  (the hash-join build of §4.3.4 case 1).  Updates committed after the
  build are invisible until the context is refreshed — exactly the paper's
  per-batch visibility rule (§5.1).
* **live index probes** — a correlated predicate matching a B-tree/R-tree
  index probes the *live* index, so it observes updates mid-batch (§4.3.4
  case 3, the Nearby Monuments plan).
* **batch-cached uncorrelated subqueries** — a subquery with no free outer
  variables (e.g. Figure 18's top-10 countries) is evaluated once per
  context generation and cached.

A *computing job* gives every batch a fresh context generation; the *old*
static framework reuses one generation for the feed's lifetime, which is
precisely why it serves stale enrichments.

Work-unit accounting: cache *builds* meter onto ``ctx.shared_meter``
(that work is partitioned across the cluster by the computing job), while
per-record probe work meters onto ``ctx.meter`` (per-partition).
"""

from __future__ import annotations

from operator import itemgetter
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..adm.schema import field_path as record_field_path
from ..adm.values import MISSING
from ..errors import SqlppAnalysisError, SqlppEvaluationError
from ..hyracks.cost import WorkMeter
from ..storage.index import IndexKind
from .analysis import (
    contains_aggregate,
    free_vars,
    split_conjuncts,
)
from .ast import (
    ArrayConstructor,
    BinaryOp,
    Call,
    CaseExpr,
    Exists,
    Expr,
    FieldAccess,
    FromTerm,
    IndexAccess,
    Literal,
    MissingLiteral,
    ObjectConstructor,
    SelectBlock,
    Star,
    Subquery,
    UnaryOp,
    VarRef,
)
from .functions import AGGREGATE_NAMES, BUILTINS
from .plans import (
    SENTINEL,
    DatasetRef,
    PlanCache,
    SelectPlan,
    TermPlan,
    aggregate_values,
    apply_binary,
    default_alias,
    match_equality,
    match_spatial,
    other_side_center,
    truthy,
)
from .plans import find_access_path as _plan_find_access_path
from .memo import canonical_probe_key
from .state_cache import StateCache, dataset_version_key


class EvaluationContext:
    """Catalog + functions + work meters + the per-batch cache."""

    def __init__(
        self,
        catalog: Dict[str, object],
        functions=None,
        meter: Optional[WorkMeter] = None,
        allow_index: bool = True,
        reference_work_scale: float = 1.0,
        use_plans: bool = True,
        state_cache=None,
        memo=None,
    ):
        self.catalog = catalog
        self.functions = functions  # repro.udf.FunctionRegistry or None
        self.reference_work_scale = reference_work_scale
        self.meter = meter if meter is not None else WorkMeter()
        self.meter.scale = reference_work_scale
        self.shared_meter = WorkMeter(scale=reference_work_scale)
        # Work replicated on EVERY node (node-local resource-file reads):
        # charged in full to each node, unlike shared_meter which is
        # partitioned work divided across the cluster.
        self.replicated_meter = WorkMeter(scale=reference_work_scale)
        self.allow_index = allow_index
        self.batch_cache: Dict[object, object] = {}
        self.generation = 0
        self.cluster_nodes = 1  # set by the ingestion pipelines
        # Compile-once plans (§5.2 analog): share the registry's cache when
        # there is one, so plans survive across per-batch contexts and are
        # invalidated centrally on function UPSERTs / DDL.
        self.use_plans = use_plans
        registry_cache = getattr(functions, "plan_cache", None)
        self.plan_cache: PlanCache = (
            registry_cache if registry_cache is not None else PlanCache()
        )
        # Cross-batch enrichment-state cache (version-keyed build reuse).
        # ``None`` (the default) keeps exact per-batch-rebuild cost
        # accounting; feed pipelines attach the registry-owned cache when
        # the feed's policy grants a byte budget.
        self.state_cache = state_cache
        # Cross-batch key-level enrichment memo (per-key correlated
        # subquery / probe-kernel results).  Same attach contract as the
        # state cache: ``None`` by default, wired in by the pipelines when
        # ``FeedPolicy.enrichment_memo_bytes`` grants a budget.
        self.memo = memo

    def refresh_batch(self) -> None:
        """Drop all cached intermediate state (a new batch begins)."""
        self.batch_cache.clear()
        self.generation += 1

    def dataset(self, name: str):
        return self.catalog.get(name)


class Env:
    """A lexical scope chain of variable bindings."""

    __slots__ = ("vars", "parent", "_group", "_group_env", "group_key_values")

    def __init__(self, vars=None, parent: Optional["Env"] = None):
        self.vars: Dict[str, object] = vars or {}
        self.parent = parent
        self._group: Optional[List["Env"]] = None  # set in group contexts
        # Nearest enclosing group env, maintained eagerly so the per-record
        # hot path (every VarRef/FieldAccess checks for group-key
        # shadowing) is an attribute read instead of a chain walk.  Group
        # envs always assign ``.group`` before any child scopes are made,
        # so inheriting the parent's pointer at construction is exact.
        self._group_env: Optional["Env"] = (
            parent._group_env if parent is not None else None
        )
        self.group_key_values: Optional[Dict[Expr, object]] = None

    @property
    def group(self) -> Optional[List["Env"]]:
        return self._group

    @group.setter
    def group(self, members: Optional[List["Env"]]) -> None:
        self._group = members
        if members is not None:
            self._group_env = self

    _SENTINEL = SENTINEL  # shared with compiled closures (plans.SENTINEL)

    def lookup(self, name: str):
        env: Optional[Env] = self
        while env is not None:
            if name in env.vars:
                return env.vars[name]
            env = env.parent
        return Env._SENTINEL

    def is_bound(self, name: str) -> bool:
        return self.lookup(name) is not Env._SENTINEL

    def bound_names(self) -> Set[str]:
        names: Set[str] = set()
        env: Optional[Env] = self
        while env is not None:
            names.update(env.vars)
            env = env.parent
        return names

    def child(self, vars=None) -> "Env":
        return Env(vars or {}, parent=self)

    def find_group(self) -> Optional["Env"]:
        return self._group_env


# SQL++ WHERE semantics: NULL/MISSING are not true (shared with plans.py).
_truthy = truthy

_ITEM0 = itemgetter(0)

# Returned by _memoized_correlated when the memo proof does not hold and
# the caller must fall through to a live _planned_select evaluation.
_MEMO_BYPASS = object()


def _sort_key(value):
    """Total order across mixed/unknown values: MISSING < NULL < typed."""
    if value is MISSING:
        return (0, 0)
    if value is None:
        return (1, 0)
    if isinstance(value, bool):
        return (2, value)
    if isinstance(value, (int, float)):
        return (3, value)
    if isinstance(value, str):
        return (4, value)
    return (5, repr(value))


class Evaluator:
    """Evaluates expressions of the SQL++ subset."""

    def __init__(self, ctx: EvaluationContext):
        self.ctx = ctx

    # ----------------------------------------------------------------- entry

    def evaluate(self, expr: Expr, env: Env):
        method = self._DISPATCH.get(type(expr))
        if method is None:
            raise SqlppEvaluationError(f"cannot evaluate node {type(expr).__name__}")
        return method(self, expr, env)

    def evaluate_query(self, expr: Expr, bindings: Optional[Dict[str, object]] = None):
        """Evaluate a top-level query; returns its value (list for selects)."""
        return self.evaluate(expr, Env(dict(bindings or {})))

    # ------------------------------------------------------------ leaf nodes

    def _eval_literal(self, expr: Literal, env: Env):
        return expr.value

    def _eval_missing(self, expr: MissingLiteral, env: Env):
        return MISSING

    def _eval_varref(self, expr: VarRef, env: Env):
        # group-key expression lookup first (GROUP BY aliases shadow)
        genv = env.find_group()
        if genv is not None and genv.group_key_values:
            if expr in genv.group_key_values:
                return genv.group_key_values[expr]
        value = env.lookup(expr.name)
        if value is not Env._SENTINEL:
            return value
        dataset = self.ctx.dataset(expr.name)
        if dataset is not None:
            return _DatasetRef(dataset)
        raise SqlppAnalysisError(f"unresolved variable: {expr.name}")

    def _eval_field(self, expr: FieldAccess, env: Env):
        genv = env.find_group()
        if genv is not None and genv.group_key_values:
            if expr in genv.group_key_values:
                return genv.group_key_values[expr]
        base = self.evaluate(expr.base, env)
        if base is MISSING or base is None:
            return MISSING
        if isinstance(base, dict):
            return base.get(expr.field, MISSING)
        return MISSING

    def _eval_index(self, expr: IndexAccess, env: Env):
        base = self.evaluate(expr.base, env)
        index = self.evaluate(expr.index, env)
        if base is MISSING or index is MISSING:
            return MISSING
        if base is None or index is None:
            return None
        if not isinstance(base, list) or not isinstance(index, int):
            return MISSING
        if -len(base) <= index < len(base):
            return base[index]
        return MISSING

    # ------------------------------------------------------------- operators

    def _eval_unary(self, expr: UnaryOp, env: Env):
        value = self.evaluate(expr.operand, env)
        if expr.op == "not":
            if value is MISSING or value is None:
                return value
            return not bool(value)
        if expr.op == "-":
            if value is MISSING or value is None:
                return value
            return -value
        raise SqlppEvaluationError(f"unknown unary operator {expr.op!r}")

    def _eval_binary(self, expr: BinaryOp, env: Env):
        op = expr.op
        if op == "and":
            left = self.evaluate(expr.left, env)
            if not _truthy(left):
                return False
            return _truthy(self.evaluate(expr.right, env))
        if op == "or":
            left = self.evaluate(expr.left, env)
            if _truthy(left):
                return True
            return _truthy(self.evaluate(expr.right, env))
        left = self.evaluate(expr.left, env)
        right = self.evaluate(expr.right, env)
        return apply_binary(op, left, right)

    # ------------------------------------------------------------------ call

    def _eval_call(self, expr: Call, env: Env):
        name = expr.name.lower()
        if expr.library is None and name in AGGREGATE_NAMES:
            return self._eval_aggregate(expr, env)
        args = [self.evaluate(arg, env) for arg in expr.args]
        if expr.library is not None:
            if self.ctx.functions is None:
                raise SqlppAnalysisError(
                    f"no function registry for {expr.qualified_name}"
                )
            return self.ctx.functions.invoke_java(
                expr.library, expr.name, args, self.ctx
            )
        if self.ctx.functions is not None and self.ctx.functions.has(expr.name):
            return self.ctx.functions.invoke(expr.name, args, self.ctx)
        builtin = BUILTINS.lookup(name)
        if builtin is None:
            raise SqlppAnalysisError(f"unknown function: {expr.name}")
        try:
            return builtin(self.ctx, *args)
        except (TypeError, ValueError, AttributeError) as exc:
            raise SqlppEvaluationError(f"{expr.name}: {exc}") from exc

    def _eval_aggregate(self, expr: Call, env: Env):
        name = expr.name.lower()
        genv = env.find_group()
        if genv is not None:
            values = []
            if expr.args and isinstance(expr.args[0], Star):
                values = [1] * len(genv.group)
            else:
                arg = expr.args[0] if expr.args else Star(VarRef("*"))
                for tuple_env in genv.group:
                    value = self.evaluate(arg, tuple_env)
                    if value is not MISSING and value is not None:
                        values.append(value)
            return _aggregate(name, values)
        # No group: SQL++ array form — the argument must be a collection.
        if not expr.args:
            raise SqlppEvaluationError(f"{name}() requires an argument")
        value = self.evaluate(expr.args[0], env)
        if value is MISSING:
            return MISSING
        if value is None:
            return None
        if not isinstance(value, list):
            raise SqlppEvaluationError(
                f"{name}() outside GROUP BY requires an array argument"
            )
        cleaned = [v for v in value if v is not None and v is not MISSING]
        return _aggregate(name, cleaned)

    # ----------------------------------------------------------- other nodes

    def _eval_case(self, expr: CaseExpr, env: Env):
        if expr.operand is not None:
            operand = self.evaluate(expr.operand, env)
            for cond, value in expr.whens:
                if self.evaluate(cond, env) == operand:
                    return self.evaluate(value, env)
        else:
            for cond, value in expr.whens:
                if _truthy(self.evaluate(cond, env)):
                    return self.evaluate(value, env)
        if expr.default is not None:
            return self.evaluate(expr.default, env)
        return None

    def _eval_object(self, expr: ObjectConstructor, env: Env):
        out = {}
        for name, value_expr in expr.fields:
            value = self.evaluate(value_expr, env)
            if value is not MISSING:
                out[name] = value
        return out

    def _eval_array(self, expr: ArrayConstructor, env: Env):
        return [self.evaluate(item, env) for item in expr.items]

    def _eval_exists(self, expr: Exists, env: Env):
        value = self.evaluate(expr.subquery, env)
        if isinstance(value, list):
            return len(value) > 0
        return value is not MISSING and value is not None

    def _eval_subquery(self, expr: Subquery, env: Env):
        return self._cached_select(expr.select, env)

    def _eval_star(self, expr: Star, env: Env):
        raise SqlppEvaluationError("'.*' is only valid in a SELECT clause")

    # ---------------------------------------------------------------- select

    def _cached_select(self, block: SelectBlock, env: Env):
        """Evaluate a select block, caching it when it has no outer refs.

        Cacheable = every free variable is a catalog dataset.  The cache
        lives for one context generation (one batch), implementing the
        stale-until-next-batch top-10 list of Figure 18.

        With ``use_plans`` (the default) the block's compiled plan carries
        the cacheability verdict and all structural analysis; the
        interpreted fallback re-derives them per call.  Both paths key the
        batch cache by the plan cache's stable token — never raw ``id()``,
        which can be recycled after the block is garbage-collected.
        """
        ctx = self.ctx
        if ctx.use_plans:
            plan = ctx.plan_cache.plan_for(block, env.bound_names(), ctx.catalog)
            if plan.cacheable:
                key = ("uncorrelated", plan.token)
                if key not in ctx.batch_cache:
                    version_key = None
                    if ctx.state_cache is not None:
                        version_key = dataset_version_key(
                            ctx.catalog, plan.dataset_deps
                        )
                        reused = self._reuse_cached_state(
                            key, key, version_key
                        )
                        if reused is not None:
                            return reused
                    result = self._planned_select(
                        plan, env, meter=ctx.shared_meter
                    )
                    ctx.batch_cache[key] = result
                    if version_key is not None:
                        self._install_built_state(
                            key, version_key, result, len(result)
                        )
                return ctx.batch_cache[key]
            if (
                ctx.memo is not None
                and plan.correlated_vars
                and plan.correlated_deps
            ):
                result = self._memoized_correlated(plan, env)
                if result is not _MEMO_BYPASS:
                    return result
            return self._planned_select(plan, env)
        fv = free_vars(block)
        if fv and all(name in ctx.catalog for name in fv):
            key = ("uncorrelated", ctx.plan_cache.token_for(block))
            if key not in ctx.batch_cache:
                version_key = None
                if ctx.state_cache is not None:
                    version_key = dataset_version_key(ctx.catalog, fv)
                    reused = self._reuse_cached_state(key, key, version_key)
                    if reused is not None:
                        return reused
                result = self.evaluate_select(
                    block, env, meter=ctx.shared_meter
                )
                ctx.batch_cache[key] = result
                if version_key is not None:
                    self._install_built_state(
                        key, version_key, result, len(result)
                    )
            return ctx.batch_cache[key]
        return self.evaluate_select(block, env)

    def evaluate_select(
        self, block: SelectBlock, env: Env, meter: Optional[WorkMeter] = None
    ) -> List:
        """Full SELECT block evaluation; returns a list of results."""
        saved_meter = None
        if meter is not None:
            saved_meter = self.ctx.meter
            self.ctx.meter = meter
        try:
            return self._evaluate_select(block, env)
        finally:
            if saved_meter is not None:
                self.ctx.meter = saved_meter

    def _evaluate_select(self, block: SelectBlock, env: Env) -> List:
        scope = env.child()
        for let in block.lets:
            scope.vars[let.var] = self.evaluate(let.expr, scope)

        if block.from_terms:
            tuple_envs = self._generate_tuples(block, scope)
        else:
            single = scope.child()
            for let in block.post_lets:
                single.vars[let.var] = self.evaluate(let.expr, single)
            if block.where is not None and not _truthy(
                self.evaluate(block.where, single)
            ):
                tuple_envs = []
            else:
                tuple_envs = [single]

        implicit_group = (
            not block.group_keys
            and block.from_terms
            and self._has_top_level_aggregate(block)
        )
        if block.group_keys or implicit_group:
            rows = self._grouped_output(block, scope, tuple_envs, implicit_group)
        else:
            rows = self._ordered_projected(block, tuple_envs)

        if block.distinct:
            rows = _distinct_rows(rows)
        if block.limit is not None:
            limit = self.evaluate(block.limit, scope)
            if not isinstance(limit, int) or limit < 0:
                raise SqlppEvaluationError("LIMIT must be a non-negative integer")
            rows = rows[:limit]
        return rows

    def _has_top_level_aggregate(self, block: SelectBlock) -> bool:
        if block.select_value is not None and contains_aggregate(block.select_value):
            return True
        return any(contains_aggregate(p.expr) for p in block.projections)

    # ------------------------------------------------------- tuple generation

    def _generate_tuples(self, block: SelectBlock, scope: Env) -> List[Env]:
        conjuncts = split_conjuncts(block.where)
        outer_bound = scope.bound_names() - set(self.ctx.catalog)
        order = self._order_terms(block.from_terms, conjuncts, outer_bound, block)
        tuples: List[Env] = []

        def recurse(idx: int, env_cur: Env, bound: Set[str], dataset_depth: int):
            if idx == len(order):
                final = env_cur.child()
                for let in block.post_lets:
                    final.vars[let.var] = self.evaluate(let.expr, final)
                if block.where is not None and not _truthy(
                    self.evaluate(block.where, final)
                ):
                    return
                tuples.append(final)
                return
            term = order[idx]
            is_dataset_term = (
                isinstance(term.source, VarRef)
                and term.source.name in self.ctx.catalog
                and not env_cur.is_bound(term.source.name)
            )
            candidates = self._access_term(term, conjuncts, env_cur, bound, block)
            if is_dataset_term and dataset_depth >= 1:
                # Reference-to-reference join pairs: the outer side's
                # candidate count is itself scaled down, so the pair work
                # carries one extra reference-work-scale factor (pair counts
                # are quadratic in dataset cardinality; the meter applies
                # the other factor).
                candidates = list(candidates)
                self.ctx.meter.nlj_pairs += int(
                    len(candidates) * self.ctx.reference_work_scale
                )
            for record in candidates:
                recurse(
                    idx + 1,
                    env_cur.child({term.var: record}),
                    bound | {term.var},
                    dataset_depth + (1 if is_dataset_term else 0),
                )

        recurse(0, scope, set(outer_bound), 0)
        return tuples

    def _order_terms(
        self,
        terms: List[FromTerm],
        conjuncts: List[Expr],
        outer_bound: Set[str],
        block: SelectBlock,
    ) -> List[FromTerm]:
        """Greedy join-order: pick next the term with a usable access path."""
        remaining = list(terms)
        ordered: List[FromTerm] = []
        bound = set(outer_bound)
        while remaining:
            chosen = None
            for term in remaining:
                if self._find_access_path(term, conjuncts, bound, block) is not None:
                    chosen = term
                    break
            if chosen is None:
                chosen = remaining[0]
            ordered.append(chosen)
            remaining.remove(chosen)
            bound.add(chosen.var)
        return ordered

    # ----------------------------------------------------------- access paths

    def _find_access_path(
        self,
        term: FromTerm,
        conjuncts: List[Expr],
        bound: Set[str],
        block: SelectBlock,
    ):
        """Return ("equality"|"spatial", field, probe_expr_builder) or None."""
        return _plan_find_access_path(
            term, conjuncts, bound, frozenset(self.ctx.catalog)
        )

    def _access_term(
        self,
        term: FromTerm,
        conjuncts: List[Expr],
        env: Env,
        bound: Set[str],
        block: SelectBlock,
    ) -> Iterable:
        source = term.source
        # Non-dataset sources: evaluate and iterate.
        if not (
            isinstance(source, VarRef)
            and source.name in self.ctx.catalog
            and not env.is_bound(source.name)
        ):
            value = self.evaluate(source, env)
            if isinstance(value, _DatasetRef):
                return self._scan_dataset(value.dataset)
            if value is MISSING or value is None:
                return []
            if isinstance(value, list):
                return value
            raise SqlppEvaluationError(
                f"FROM source for {term.var!r} is not iterable"
            )

        dataset = self.ctx.catalog[source.name]
        no_index = "no-index" in term.hints or "no-index" in block.hints
        path = self._find_access_path(term, conjuncts, bound, block)
        if path is not None:
            kind, field, probe_builder = path
            if kind == "equality":
                probe_value = self.evaluate(probe_builder, env)
                index_name = (
                    dataset.index_on(field, IndexKind.BTREE) if not no_index else None
                )
                if index_name is not None and self.ctx.allow_index:
                    return self._btree_probe(dataset, index_name, probe_value)
                return self._hash_probe(dataset, field, probe_value)
            if kind == "spatial":
                index_name = (
                    dataset.index_on(field, IndexKind.RTREE) if not no_index else None
                )
                if index_name is not None and self.ctx.allow_index:
                    query = self.evaluate(probe_builder, env)
                    if query is MISSING or query is None:
                        return []
                    return self._rtree_probe(dataset, index_name, query)
                # no index: fall through to a batch-cached scan (naive NLJ)
        return self._scan_dataset(dataset)

    # Access-path implementations ------------------------------------------

    @staticmethod
    def _penalty_units(dataset, reads: int, index_probe: bool = False) -> int:
        """Activity-penalty units for ``reads`` reference accesses (§7.3).

        Zero when the dataset's in-memory component is quiescent.  A
        per-batch *scan* ploughs through the memtable once — its penalty
        grows gently (sqrt) with update pressure.  *Index probes* pay the
        memtable check on every access throughout the job, so their
        penalty grows much faster — this is why Nearby Monuments degrades
        to 24% under a 400/s update rate while the scan-once cases keep
        ~52% (paper §7.3).
        """
        if not dataset.update_activity:
            return 0
        pressure = dataset.update_pressure
        if index_probe:
            return int(reads * (0.15 + 4.0 * pressure))
        return int(reads * 0.35 * pressure**0.5)

    def _reuse_cached_state(self, batch_key, state_key, version_key):
        """Cross-batch StateCache lookup for one materialised-state key.

        On a hit the cached object is installed into this generation's
        ``batch_cache`` (pinning it against eviction for the rest of the
        batch) and the *reuse* — not the avoided build — is metered onto
        ``shared_meter`` so the win is observable instead of silent.
        Returns the cached value or ``None``.
        """
        cache = self.ctx.state_cache
        if cache is None:
            return None
        entry = cache.get(state_key, version_key)
        if entry is None:
            return None
        self.ctx.batch_cache[batch_key] = entry.value
        self.ctx.shared_meter.state_cache_hits += 1
        self.ctx.shared_meter.state_cache_reused_records += entry.records
        return entry.value

    def _install_built_state(self, state_key, version_key, value, records):
        cache = self.ctx.state_cache
        if cache is not None:
            cache.put(state_key, version_key, value, records)

    def _memoized_correlated(self, plan, env):
        """Key-level memo for a correlated (hash-probe-backed) subquery.

        The block's result is a pure function of (a) the bindings of its
        free outer variables and (b) the contents of the catalog datasets
        it reads — so an entry keyed on the canonical outer bindings and
        guarded by the datasets' ``dataset_version_key`` is a proof the
        recomputation would be identical.  Bypasses (returns
        :data:`_MEMO_BYPASS`) whenever the proof does not hold: an outer
        variable is unbound here, a dep dataset is missing from the
        catalog, or a dep dataset carries a secondary index the planner
        may probe *live* (live index probes see mid-batch updates, which
        a cross-batch memo must never mask).
        """
        ctx = self.ctx
        catalog = ctx.catalog
        for name in plan.correlated_deps:
            dataset = catalog.get(name)
            if dataset is None or (ctx.allow_index and dataset.indexes):
                return _MEMO_BYPASS
        bindings = []
        for var in plan.correlated_vars:
            value = env.lookup(var)
            if value is Env._SENTINEL:
                return _MEMO_BYPASS
            bindings.append(canonical_probe_key(value))
        key = ("correlated", plan.token, tuple(bindings))
        version_key = dataset_version_key(catalog, plan.correlated_deps)
        entry = ctx.memo.get(key, version_key)
        if entry is not None:
            ctx.meter.memo_hits += 1
            ctx.meter.memo_reused_records += entry.records
            return entry.value
        result = self._planned_select(plan, env)
        ctx.memo.put(key, version_key, result, len(result))
        return result

    def _scan_dataset(self, dataset) -> List[dict]:
        """Batch-cached full scan (once per context generation)."""
        key = ("scan", dataset.name)
        cached = self.ctx.batch_cache.get(key)
        if cached is None:
            cached = self._reuse_cached_state(key, key, dataset.version)
        if cached is None:
            cached = list(dataset.scan())
            self.ctx.batch_cache[key] = cached
            self.ctx.shared_meter.records_scanned += len(cached)
            self.ctx.shared_meter.penalized_reads += self._penalty_units(
                dataset, len(cached)
            )
            self._install_built_state(key, dataset.version, cached, len(cached))
        return cached

    def _hash_probe(self, dataset, field: str, probe_value) -> List[dict]:
        """Batch-cached hash table keyed on ``field`` (§4.3.4 case 1).

        The build reads the generation's scan snapshot, so pre-warming the
        scan cache (as the stream-model pipeline does at feed start) freezes
        the data the table will be built from.  With a StateCache attached,
        a table built at the dataset's current committed version is reused
        across batches until a write bumps the version — the UDF observes
        updates at exactly the same batch boundaries as a rebuild would.
        """
        table = self._hash_table(dataset, field)
        self.ctx.meter.hash_probes += 1
        if probe_value is MISSING or probe_value is None:
            return []
        return table.get(probe_value, [])

    def _hash_table(self, dataset, field: str) -> Dict:
        """The batch-cached build side of :meth:`_hash_probe`.

        Split out so the columnar kernels can acquire the table once per
        batch and charge all probes in one aggregated increment; the build
        charges (``hash_builds`` on the shared meter, StateCache reuse)
        are identical whichever path triggers them first.
        """
        key = ("hash", dataset.name, field)
        table = self.ctx.batch_cache.get(key)
        if table is None:
            table = self._reuse_cached_state(key, key, dataset.version)
        if table is None:
            snapshot = self._scan_dataset(dataset)
            table = {}
            for record in snapshot:
                value = record_field_path(record, field)
                if value is not MISSING and value is not None:
                    table.setdefault(value, []).append(record)
            self.ctx.batch_cache[key] = table
            self.ctx.shared_meter.hash_builds += len(snapshot)
            self._install_built_state(
                key, dataset.version, table, len(snapshot)
            )
        return table

    def _btree_probe(self, dataset, index_name: str, probe_value) -> List[dict]:
        """Live B-tree index probe — sees mid-batch updates."""
        self.ctx.meter.btree_probes += 1
        self.ctx.meter.penalized_reads += self._penalty_units(
            dataset, 1, index_probe=True
        )
        if probe_value is MISSING or probe_value is None:
            return []
        matches = list(dataset.index_probe_equal(index_name, probe_value))
        self.ctx.meter.index_fetches += len(matches)
        return matches

    def _rtree_probe(self, dataset, index_name: str, query) -> List[dict]:
        """Live R-tree index probe — sees mid-batch updates."""
        before = sum(idx.nodes_visited for idx in dataset.indexes[index_name])
        matches = list(dataset.index_probe_spatial(index_name, query))
        after = sum(idx.nodes_visited for idx in dataset.indexes[index_name])
        self.ctx.meter.rtree_nodes_visited += max(after - before, 1)
        # The probe record is broadcast to every index partition (§7.4.2);
        # this work is per record x per node, so it does not shrink as the
        # cluster grows — the reason Nearby Monuments speeds up poorly.
        self.ctx.meter.broadcast_records += max(
            dataset.num_partitions, self.ctx.cluster_nodes
        )
        self.ctx.meter.index_fetches += len(matches)  # random record fetches
        self.ctx.meter.penalized_reads += self._penalty_units(
            dataset, 1 + len(matches), index_probe=True
        )
        return matches

    # --------------------------------------------------------------- shaping

    def _order_env(self, env: Env, row) -> Env:
        """ORDER BY may reference SELECT output aliases (SQL++ semantics)."""
        if isinstance(row, dict):
            child = env.child(dict(row))
            return child
        return env

    def _order_key_for(self, block: SelectBlock, env: Env, row) -> Tuple:
        oenv = self._order_env(env, row)
        return tuple(
            _OrderKey(_sort_key(self.evaluate(item.expr, oenv)), item.descending)
            for item in block.order_items
        )

    def _ordered_projected(self, block: SelectBlock, tuple_envs: List[Env]) -> List:
        rows = [self._project(block, env) for env in tuple_envs]
        if block.order_items:
            self.ctx.meter.sort_items += len(rows)
            decorated = [
                (self._order_key_for(block, env, row), index, row)
                for index, (env, row) in enumerate(zip(tuple_envs, rows))
            ]
            decorated.sort(key=lambda item: (item[0], item[1]))
            rows = [row for _key, _index, row in decorated]
        return rows

    def _grouped_output(
        self,
        block: SelectBlock,
        scope: Env,
        tuple_envs: List[Env],
        implicit: bool,
    ) -> List:
        self.ctx.meter.group_items += len(tuple_envs)
        groups: Dict[Tuple, List[Env]] = {}
        group_order: List[Tuple] = []
        if implicit:
            key_values: List[Tuple] = [()] * len(tuple_envs)
        else:
            key_values = [
                tuple(self.evaluate(k.expr, env) for k in block.group_keys)
                for env in tuple_envs
            ]
        for env, key in zip(tuple_envs, key_values):
            hashable = tuple(_sort_key(v) for v in key)
            if hashable not in groups:
                groups[hashable] = []
                group_order.append((hashable, key))
            groups[hashable].append(env)
        if implicit and not tuple_envs:
            # SQL semantics: aggregates over an empty input yield one row.
            group_order.append(((), ()))
            groups[()] = []

        group_envs: List[Env] = []
        for hashable, key in group_order:
            members = groups[hashable]
            genv = scope.child()
            genv.group = members
            genv.group_key_values = {}
            for key_spec, value in zip(block.group_keys, key):
                genv.group_key_values[key_spec.expr] = value
                if key_spec.alias:
                    genv.vars[key_spec.alias] = value
                else:
                    # allow referring to the key by its last path component
                    name = _default_alias(key_spec.expr, fallback=None)
                    if name:
                        genv.vars.setdefault(name, value)
            group_envs.append(genv)

        rows = [self._project(block, genv) for genv in group_envs]
        if block.order_items:
            self.ctx.meter.sort_items += len(group_envs)
            decorated = [
                (self._order_key_for(block, genv, row), index, row)
                for index, (genv, row) in enumerate(zip(group_envs, rows))
            ]
            decorated.sort(key=lambda item: (item[0], item[1]))
            rows = [row for _key, _index, row in decorated]
        return rows

    def _project(self, block: SelectBlock, env: Env):
        if block.select_value is not None:
            return self.evaluate(block.select_value, env)
        out: Dict[str, object] = {}
        for position, proj in enumerate(block.projections, start=1):
            if isinstance(proj.expr, Star):
                base = self.evaluate(proj.expr.base, env)
                if isinstance(base, dict):
                    out.update(base)
                continue
            name = proj.alias or _default_alias(proj.expr, fallback=f"${position}")
            value = self.evaluate(proj.expr, env)
            if value is not MISSING:
                out[name] = value
        return out

    # -------------------------------------------------------- planned path
    #
    # Mirrors of the interpreted SELECT machinery above, driven by a
    # compiled :class:`~repro.sqlpp.plans.SelectPlan` instead of the AST.
    # Every WorkMeter charge and every batch-cache/visibility rule must
    # stay byte-identical to the interpreted path — the access primitives
    # (_scan_dataset/_hash_probe/_btree_probe/_rtree_probe) are shared.

    def _planned_select(
        self, plan: SelectPlan, env: Env, meter: Optional[WorkMeter] = None
    ) -> List:
        saved_meter = None
        if meter is not None:
            saved_meter = self.ctx.meter
            self.ctx.meter = meter
        try:
            return self._run_plan(plan, env)
        finally:
            if saved_meter is not None:
                self.ctx.meter = saved_meter

    def _run_plan(self, plan: SelectPlan, env: Env) -> List:
        scope = env.child()
        for var, fn in plan.let_fns:
            scope.vars[var] = fn(self, scope)

        if plan.terms is not None:
            tuple_envs = self._planned_tuples(plan, scope)
        else:
            single = scope.child()
            for var, fn in plan.post_let_fns:
                single.vars[var] = fn(self, single)
            if plan.where_fn is not None and not _truthy(
                plan.where_fn(self, single)
            ):
                tuple_envs = []
            else:
                tuple_envs = [single]

        if plan.has_group:
            rows = self._planned_grouped(plan, scope, tuple_envs)
        else:
            rows = self._planned_ordered_projected(plan, tuple_envs)

        if plan.distinct:
            rows = _distinct_rows(rows)
        if plan.limit_fn is not None:
            limit = plan.limit_fn(self, scope)
            if not isinstance(limit, int) or limit < 0:
                raise SqlppEvaluationError("LIMIT must be a non-negative integer")
            rows = rows[:limit]
        return rows

    def _planned_tuples(self, plan: SelectPlan, scope: Env) -> List[Env]:
        ctx = self.ctx
        terms = plan.terms
        total = len(terms)
        post_let_fns = plan.post_let_fns
        where_fn = plan.where_fn
        tuples: List[Env] = []

        def recurse(idx: int, env_cur: Env, dataset_depth: int):
            if idx == total:
                if post_let_fns:
                    final = env_cur.child()
                    for var, fn in post_let_fns:
                        final.vars[var] = fn(self, final)
                else:
                    # no post-FROM LETs: the last term's binding env IS the
                    # tuple env (fresh per candidate, so safe to keep)
                    final = env_cur
                if where_fn is not None and not _truthy(where_fn(self, final)):
                    return
                tuples.append(final)
                return
            tp = terms[idx]
            candidates = self._planned_access(tp, env_cur)
            if tp.is_dataset and dataset_depth >= 1:
                # Reference-to-reference join pairs: the outer side's
                # candidate count is itself scaled down, so the pair work
                # carries one extra reference-work-scale factor (pair counts
                # are quadratic in dataset cardinality; the meter applies
                # the other factor).
                candidates = list(candidates)
                ctx.meter.nlj_pairs += int(
                    len(candidates) * ctx.reference_work_scale
                )
            next_depth = dataset_depth + (1 if tp.is_dataset else 0)
            var = tp.var
            for record in candidates:
                recurse(idx + 1, Env({var: record}, env_cur), next_depth)

        recurse(0, scope, 0)
        return tuples

    def _planned_access(self, tp: TermPlan, env: Env) -> Iterable:
        # Non-dataset sources: evaluate and iterate.
        if not tp.is_dataset:
            value = tp.source_fn(self, env)
            if isinstance(value, _DatasetRef):
                return self._scan_dataset(value.dataset)
            if value is MISSING or value is None:
                return []
            if isinstance(value, list):
                return value
            raise SqlppEvaluationError(
                f"FROM source for {tp.var!r} is not iterable"
            )
        dataset = self.ctx.catalog[tp.dataset_name]
        if tp.access_kind == "equality":
            probe_value = tp.probe_fn(self, env)
            index_name = (
                dataset.index_on(tp.access_field, IndexKind.BTREE)
                if not tp.no_index
                else None
            )
            if index_name is not None and self.ctx.allow_index:
                return self._btree_probe(dataset, index_name, probe_value)
            return self._hash_probe(dataset, tp.access_field, probe_value)
        if tp.access_kind == "spatial":
            index_name = (
                dataset.index_on(tp.access_field, IndexKind.RTREE)
                if not tp.no_index
                else None
            )
            if index_name is not None and self.ctx.allow_index:
                query = tp.probe_fn(self, env)
                if query is MISSING or query is None:
                    return []
                return self._rtree_probe(dataset, index_name, query)
            # no index: fall through to a batch-cached scan (naive NLJ)
        return self._scan_dataset(dataset)

    def _planned_order_key(self, plan: SelectPlan, env: Env, row) -> Tuple:
        oenv = self._order_env(env, row)
        items = plan.order_items
        if len(items) == 1:  # by far the common case; skip the genexpr
            fn, descending = items[0]
            return (_OrderKey(_sort_key(fn(self, oenv)), descending),)
        return tuple(
            _OrderKey(_sort_key(fn(self, oenv)), descending)
            for fn, descending in items
        )

    def _planned_sorted_rows(
        self, plan: SelectPlan, envs: List[Env], rows: List
    ) -> List:
        self.ctx.meter.sort_items += len(rows)
        items = plan.order_items
        if len(items) == 1:
            # Single key: skip the _OrderKey wrappers — a stable C-level
            # sort on the raw _sort_key tuple with ``reverse`` for DESC is
            # order-identical (ties keep input order either way).
            fn, descending = items[0]
            pairs = [
                (_sort_key(fn(self, self._order_env(env, row))), row)
                for env, row in zip(envs, rows)
            ]
            pairs.sort(key=_ITEM0, reverse=descending)
            return [row for _key, row in pairs]
        decorated = [
            (self._planned_order_key(plan, env, row), index, row)
            for index, (env, row) in enumerate(zip(envs, rows))
        ]
        # The unique index breaks ties, so rows are never compared.
        decorated.sort()
        return [row for _key, _index, row in decorated]

    def _planned_ordered_projected(
        self, plan: SelectPlan, tuple_envs: List[Env]
    ) -> List:
        rows = [self._planned_project(plan, env) for env in tuple_envs]
        if plan.order_items:
            rows = self._planned_sorted_rows(plan, tuple_envs, rows)
        return rows

    def _planned_grouped(
        self, plan: SelectPlan, scope: Env, tuple_envs: List[Env]
    ) -> List:
        self.ctx.meter.group_items += len(tuple_envs)
        groups: Dict[Tuple, List[Env]] = {}
        group_order: List[Tuple] = []
        if plan.implicit_group:
            key_values: List[Tuple] = [()] * len(tuple_envs)
        else:
            key_values = [
                tuple(fn(self, env) for _expr, _alias, _default, fn in plan.group_keys)
                for env in tuple_envs
            ]
        for env, key in zip(tuple_envs, key_values):
            hashable = tuple(_sort_key(v) for v in key)
            if hashable not in groups:
                groups[hashable] = []
                group_order.append((hashable, key))
            groups[hashable].append(env)
        if plan.implicit_group and not tuple_envs:
            # SQL semantics: aggregates over an empty input yield one row.
            group_order.append(((), ()))
            groups[()] = []

        group_envs: List[Env] = []
        for hashable, key in group_order:
            members = groups[hashable]
            genv = scope.child()
            genv.group = members
            genv.group_key_values = {}
            for (expr, alias, default_name, _fn), value in zip(plan.group_keys, key):
                genv.group_key_values[expr] = value
                if alias:
                    genv.vars[alias] = value
                elif default_name:
                    # allow referring to the key by its last path component
                    genv.vars.setdefault(default_name, value)
            group_envs.append(genv)

        rows = [self._planned_project(plan, genv) for genv in group_envs]
        if plan.order_items:
            rows = self._planned_sorted_rows(plan, group_envs, rows)
        return rows

    def _planned_project(self, plan: SelectPlan, env: Env):
        if plan.select_value_fn is not None:
            return plan.select_value_fn(self, env)
        out: Dict[str, object] = {}
        for name, fn in plan.projections:
            if name is None:  # ``v.*`` expansion
                base = fn(self, env)
                if isinstance(base, dict):
                    out.update(base)
                continue
            value = fn(self, env)
            if value is not MISSING:
                out[name] = value
        return out

    _DISPATCH = {}


class _OrderKey:
    """Comparable wrapper honoring per-item DESC flags."""

    __slots__ = ("key", "descending")

    def __init__(self, key, descending: bool):
        self.key = key
        self.descending = descending

    def __lt__(self, other: "_OrderKey"):
        if self.descending:
            return other.key < self.key
        return self.key < other.key

    def __eq__(self, other):
        return self.key == other.key


# Shared with the plan compiler (plans.py); kept under the historical
# module-private names for existing importers (compiler.py, tests).
_DatasetRef = DatasetRef
_default_alias = default_alias


# Aggregate folding lives in plans.py (shared with compiled aggregate
# closures); historical module-private alias:
_aggregate = aggregate_values


def _distinct_rows(rows: List) -> List:
    seen = set()
    out = []
    for row in rows:
        key = repr(row)
        if key not in seen:
            seen.add(key)
            out.append(row)
    return out


# Pattern matchers for access-path selection live in plans.py (they are
# shared by plan building); historical module-private aliases:
_match_equality = match_equality
_match_spatial = match_spatial


# Bind the dispatch table now that all methods exist.
Evaluator._DISPATCH = {
    Literal: Evaluator._eval_literal,
    MissingLiteral: Evaluator._eval_missing,
    VarRef: Evaluator._eval_varref,
    FieldAccess: Evaluator._eval_field,
    IndexAccess: Evaluator._eval_index,
    UnaryOp: Evaluator._eval_unary,
    BinaryOp: Evaluator._eval_binary,
    Call: Evaluator._eval_call,
    CaseExpr: Evaluator._eval_case,
    ObjectConstructor: Evaluator._eval_object,
    ArrayConstructor: Evaluator._eval_array,
    Exists: Evaluator._eval_exists,
    Subquery: Evaluator._eval_subquery,
    Star: Evaluator._eval_star,
    SelectBlock: Evaluator._cached_select,
}
