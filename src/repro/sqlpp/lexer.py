"""Tokenizer for the SQL++ subset."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

from ..errors import SqlppSyntaxError

KEYWORDS = frozenset(
    """
    select value from where let group by order limit asc desc as and or not
    in exists case when then else end true false null missing distinct
    create function type dataset index feed primary key open closed if
    connect to start stop apply insert into upsert delete with on rtree btree
    having
    """.split()
)

PUNCT = (
    "<=",
    ">=",
    "!=",
    "<",
    ">",
    "=",
    "(",
    ")",
    "{",
    "}",
    "[",
    "]",
    ",",
    ";",
    ".",
    "+",
    "-",
    "*",
    "/",
    "%",
    "#",
    ":",
    "?",
    "$",
)


@dataclass(frozen=True)
class Token:
    kind: str  # 'keyword' 'ident' 'number' 'string' 'punct' 'hint' 'eof'
    text: str
    line: int
    column: int

    def is_keyword(self, word: str) -> bool:
        return self.kind == "keyword" and self.text == word

    def is_punct(self, text: str) -> bool:
        return self.kind == "punct" and self.text == text


def tokenize(source: str) -> List[Token]:
    """Lex SQL++ text into tokens; raises :class:`SqlppSyntaxError`."""
    return list(_tokens(source))


def _tokens(source: str) -> Iterator[Token]:
    i = 0
    line = 1
    line_start = 0
    n = len(source)
    while i < n:
        ch = source[i]
        if ch == "\n":
            line += 1
            line_start = i + 1
            i += 1
            continue
        if ch in " \t\r":
            i += 1
            continue
        col = i - line_start + 1
        # comments and hints
        if source.startswith("--", i):
            while i < n and source[i] != "\n":
                i += 1
            continue
        if source.startswith("/*+", i):
            end = source.find("*/", i)
            if end < 0:
                raise SqlppSyntaxError("unterminated hint comment", line, col)
            yield Token("hint", source[i + 3 : end].strip(), line, col)
            i = end + 2
            continue
        if source.startswith("/*", i):
            end = source.find("*/", i)
            if end < 0:
                raise SqlppSyntaxError("unterminated comment", line, col)
            line += source.count("\n", i, end)
            i = end + 2
            continue
        # strings (single or double quoted, backslash escapes)
        if ch in "'\"":
            quote = ch
            j = i + 1
            buf = []
            while j < n and source[j] != quote:
                if source[j] == "\\" and j + 1 < n:
                    esc = source[j + 1]
                    buf.append(
                        {"n": "\n", "t": "\t", "\\": "\\", quote: quote}.get(esc, esc)
                    )
                    j += 2
                else:
                    buf.append(source[j])
                    j += 1
            if j >= n:
                raise SqlppSyntaxError("unterminated string literal", line, col)
            yield Token("string", "".join(buf), line, col)
            i = j + 1
            continue
        # numbers
        if ch.isdigit() or (ch == "." and i + 1 < n and source[i + 1].isdigit()):
            j = i
            seen_dot = False
            seen_exp = False
            while j < n:
                c = source[j]
                if c.isdigit():
                    j += 1
                elif c == "." and not seen_dot and not seen_exp:
                    # don't eat '.' if it's a path separator after digits
                    if j + 1 < n and source[j + 1].isdigit():
                        seen_dot = True
                        j += 1
                    else:
                        break
                elif c in "eE" and not seen_exp and j + 1 < n and (
                    source[j + 1].isdigit() or source[j + 1] in "+-"
                ):
                    seen_exp = True
                    j += 2
                else:
                    break
            yield Token("number", source[i:j], line, col)
            i = j
            continue
        # identifiers / keywords (also backtick-quoted identifiers)
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            word = source[i:j]
            lower = word.lower()
            if lower in KEYWORDS:
                yield Token("keyword", lower, line, col)
            else:
                yield Token("ident", word, line, col)
            i = j
            continue
        if ch == "`":
            end = source.find("`", i + 1)
            if end < 0:
                raise SqlppSyntaxError("unterminated quoted identifier", line, col)
            yield Token("ident", source[i + 1 : end], line, col)
            i = end + 1
            continue
        # punctuation (longest match first)
        matched: Optional[str] = None
        for punct in PUNCT:
            if source.startswith(punct, i):
                matched = punct
                break
        if matched is None:
            raise SqlppSyntaxError(f"unexpected character {ch!r}", line, col)
        yield Token("punct", matched, line, col)
        i += len(matched)
    yield Token("eof", "", line, n - line_start + 1)
