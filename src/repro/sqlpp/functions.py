"""Built-in SQL++ functions: string, numeric, spatial, temporal, aggregate.

Builtins receive the evaluation context first so the expensive ones
(edit_distance, spatial predicates) can count work units on the shared
:class:`~repro.hyracks.cost.WorkMeter`.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from ..adm.values import (
    MISSING,
    Circle,
    DateTime,
    Duration,
    Point,
    Rectangle,
)
from ..adm.values import spatial_intersect as _geo_intersect
from ..errors import SqlppEvaluationError

AGGREGATE_NAMES = frozenset({"count", "sum", "avg", "min", "max", "array_agg"})

#: Builtins safe for whole-column (vectorized) evaluation: pure functions
#: of their arguments that never touch a WorkMeter.  ``edit_distance``
#: (DP-cell metering) and ``spatial_intersect`` (spatial-test metering)
#: are deliberately absent — eager column evaluation of a metered builtin
#: in a conditionally-evaluated position would change simulated costs.
VECTORIZABLE_BUILTINS = frozenset(
    {
        # string
        "contains",
        "lower",
        "upper",
        "trim",
        "length",
        "string_length",
        "starts_with",
        "ends_with",
        "substring",
        "replace",
        "split",
        "string_concat",
        "to_string",
        # numeric
        "abs",
        "round",
        "floor",
        "ceil",
        "sqrt",
        "to_number",
        "to_bigint",
        # null/missing handling
        "is_missing",
        "is_null",
        "is_unknown",
        "coalesce",
        "if_missing",
        "if_missing_or_null",
        # arrays
        "array_count",
        "array_sum",
        "array_min",
        "array_max",
        "array_avg",
        "array_contains",
        "array_distinct",
        "array_flatten",
        "len",
        # spatial constructors / charge-free predicates
        "create_point",
        "create_circle",
        "create_rectangle",
        "spatial_distance",
        "get_x",
        "get_y",
        # temporal
        "datetime",
        "duration",
        "get_year",
    }
)


def edit_distance(a: str, b: str, meter=None) -> int:
    """Levenshtein distance with O(min(a,b)) rows; meters DP cells."""
    if len(a) < len(b):
        a, b = b, a
    if meter is not None:
        meter.edit_distance_cells += (len(a) + 1) * (len(b) + 1)
    if not b:
        return len(a)
    previous = list(range(len(b) + 1))
    for i, ca in enumerate(a, start=1):
        current = [i]
        for j, cb in enumerate(b, start=1):
            cost = 0 if ca == cb else 1
            current.append(
                min(previous[j] + 1, current[j - 1] + 1, previous[j - 1] + cost)
            )
        previous = current
    return previous[-1]


def _propagate_missing(*args) -> bool:
    return any(a is MISSING for a in args)


class Builtins:
    """Registry of built-in functions; looked up by lowercase name."""

    def __init__(self):
        self._fns: Dict[str, Callable] = {}
        self._register_all()

    def lookup(self, name: str):
        return self._fns.get(name.lower())

    def __contains__(self, name: str) -> bool:
        return name.lower() in self._fns

    def register(self, name: str, fn: Callable) -> None:
        self._fns[name.lower()] = fn

    def names(self) -> List[str]:
        return sorted(self._fns)

    # ------------------------------------------------------------------ setup

    def _register_all(self) -> None:
        reg = self.register

        # ------- string
        def _str_fn(fn):
            def wrapper(ctx, *args):
                if _propagate_missing(*args):
                    return MISSING
                if any(a is None for a in args):
                    return None
                return fn(*args)

            return wrapper

        reg("contains", _str_fn(lambda s, sub: sub in s))
        reg("lower", _str_fn(lambda s: s.lower()))
        reg("upper", _str_fn(lambda s: s.upper()))
        reg("trim", _str_fn(lambda s: s.strip()))
        reg("length", _str_fn(len))
        reg("string_length", _str_fn(len))
        reg("starts_with", _str_fn(lambda s, p: s.startswith(p)))
        reg("ends_with", _str_fn(lambda s, p: s.endswith(p)))
        reg(
            "substring",
            _str_fn(lambda s, start, n=None: s[start:] if n is None else s[start : start + n]),
        )
        reg("replace", _str_fn(lambda s, old, new: s.replace(old, new)))
        reg("split", _str_fn(lambda s, sep: s.split(sep)))
        reg("string_concat", _str_fn(lambda parts: "".join(parts)))
        reg("to_string", _str_fn(str))

        def _edit_distance(ctx, a, b):
            if _propagate_missing(a, b):
                return MISSING
            if a is None or b is None:
                return None
            meter = getattr(ctx, "meter", None)
            return edit_distance(a, b, meter)

        reg("edit_distance", _edit_distance)

        # ------- numeric
        reg("abs", _str_fn(abs))
        reg("round", _str_fn(round))
        reg("floor", _str_fn(lambda x: int(x // 1)))
        reg("ceil", _str_fn(lambda x: -int((-x) // 1)))
        reg("sqrt", _str_fn(lambda x: x**0.5))
        reg("to_number", _str_fn(float))
        reg("to_bigint", _str_fn(int))

        # ------- null/missing handling
        reg("is_missing", lambda ctx, v: v is MISSING)
        reg("is_null", lambda ctx, v: v is None)
        reg("is_unknown", lambda ctx, v: v is None or v is MISSING)

        def _coalesce(ctx, *args):
            for arg in args:
                if arg is not MISSING and arg is not None:
                    return arg
            return None

        reg("coalesce", _coalesce)
        reg("if_missing", _coalesce)
        reg("if_missing_or_null", _coalesce)

        # ------- arrays
        def _array_fn(fn):
            def wrapper(ctx, arr, *rest):
                if arr is MISSING:
                    return MISSING
                if arr is None:
                    return None
                if not isinstance(arr, list):
                    raise SqlppEvaluationError(
                        f"expected an array, got {type(arr).__name__}"
                    )
                return fn(arr, *rest)

            return wrapper

        reg("array_count", _array_fn(len))
        reg("array_sum", _array_fn(lambda a: sum(x for x in a if x is not None)))
        reg("array_min", _array_fn(lambda a: min(a) if a else None))
        reg("array_max", _array_fn(lambda a: max(a) if a else None))
        reg(
            "array_avg",
            _array_fn(lambda a: (sum(a) / len(a)) if a else None),
        )
        reg("array_contains", _array_fn(lambda a, v: v in a))
        reg("array_distinct", _array_fn(_distinct))
        reg("array_flatten", _array_fn(_flatten))
        reg("len", _array_fn(len))

        # ------- spatial
        def _create_point(ctx, x, y):
            if _propagate_missing(x, y):
                return MISSING
            if x is None or y is None:
                return None
            return Point(float(x), float(y))

        def _create_circle(ctx, center, radius):
            if _propagate_missing(center, radius):
                return MISSING
            if center is None or radius is None:
                return None
            if not isinstance(center, Point):
                raise SqlppEvaluationError("create_circle: center must be a point")
            return Circle(center, float(radius))

        def _create_rectangle(ctx, p1, p2):
            if _propagate_missing(p1, p2):
                return MISSING
            return Rectangle(p1.x, p1.y, p2.x, p2.y)

        def _spatial_intersect(ctx, a, b):
            if _propagate_missing(a, b):
                return MISSING
            if a is None or b is None:
                return None
            meter = getattr(ctx, "meter", None)
            if meter is not None:
                meter.spatial_tests += 1
            return _geo_intersect(a, b)

        def _spatial_distance(ctx, a, b):
            if _propagate_missing(a, b):
                return MISSING
            if a is None or b is None:
                return None
            pa = a.center if isinstance(a, Circle) else a
            pb = b.center if isinstance(b, Circle) else b
            if not isinstance(pa, Point) or not isinstance(pb, Point):
                raise SqlppEvaluationError("spatial_distance expects points")
            return pa.distance_to(pb)

        reg("create_point", _create_point)
        reg("create_circle", _create_circle)
        reg("create_rectangle", _create_rectangle)
        reg("spatial_intersect", _spatial_intersect)
        reg("spatial_distance", _spatial_distance)
        reg("get_x", _str_fn(lambda p: p.x))
        reg("get_y", _str_fn(lambda p: p.y))

        # ------- temporal
        reg("datetime", _str_fn(DateTime.parse))
        reg("duration", _str_fn(Duration.parse))

        def _get_year(ctx, dt):
            if dt is MISSING:
                return MISSING
            return dt.components()[0] if dt is not None else None

        reg("get_year", _get_year)


def _distinct(arr: list) -> list:
    seen = set()
    out = []
    for item in arr:
        key = repr(item)
        if key not in seen:
            seen.add(key)
            out.append(item)
    return out


def _flatten(arr: list) -> list:
    out = []
    for item in arr:
        if isinstance(item, list):
            out.extend(item)
        else:
            out.append(item)
    return out


BUILTINS = Builtins()
