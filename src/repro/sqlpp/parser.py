"""Recursive-descent parser for the SQL++ subset."""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..errors import SqlppSyntaxError
from .ast import (
    ArrayConstructor,
    BinaryOp,
    Call,
    CaseExpr,
    Exists,
    Expr,
    FieldAccess,
    FromTerm,
    FunctionDefinition,
    GroupKey,
    IndexAccess,
    LetClause,
    Literal,
    MissingLiteral,
    ObjectConstructor,
    OrderItem,
    Projection,
    SelectBlock,
    Star,
    Subquery,
    UnaryOp,
    VarRef,
)
from .lexer import Token, tokenize
from .statements import (
    ConnectFeed,
    CreateDataset,
    CreateFeed,
    CreateFunction,
    CreateIndex,
    CreateType,
    DeleteStatement,
    InsertStatement,
    QueryStatement,
    StartFeed,
    Statement,
    StopFeed,
)

_COMPARISON_OPS = {"=", "!=", "<", "<=", ">", ">="}


class Parser:
    """One-token-lookahead recursive-descent parser."""

    def __init__(self, source: str):
        self.tokens = tokenize(source)
        self.pos = 0

    # ------------------------------------------------------------- utilities

    @property
    def current(self) -> Token:
        return self.tokens[self.pos]

    def peek(self, offset: int = 1) -> Token:
        idx = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[idx]

    def advance(self) -> Token:
        token = self.current
        if token.kind != "eof":
            self.pos += 1
        return token

    def error(self, message: str) -> SqlppSyntaxError:
        tok = self.current
        shown = tok.text or "<eof>"
        return SqlppSyntaxError(
            f"{message} (found {shown!r})", tok.line, tok.column
        )

    def expect_keyword(self, word: str) -> Token:
        if not self.current.is_keyword(word):
            raise self.error(f"expected {word.upper()}")
        return self.advance()

    def expect_punct(self, text: str) -> Token:
        if not self.current.is_punct(text):
            raise self.error(f"expected {text!r}")
        return self.advance()

    def expect_ident(self) -> str:
        if self.current.kind == "ident":
            return self.advance().text
        # allow non-reserved use of a few keyword-ish names as identifiers
        if self.current.kind == "keyword" and self.current.text in ("value", "key"):
            return self.advance().text
        raise self.error("expected an identifier")

    def accept_keyword(self, word: str) -> bool:
        if self.current.is_keyword(word):
            self.advance()
            return True
        return False

    def accept_punct(self, text: str) -> bool:
        if self.current.is_punct(text):
            self.advance()
            return True
        return False

    def collect_hints(self) -> Tuple[str, ...]:
        hints = []
        while self.current.kind == "hint":
            hints.append(self.advance().text)
        return tuple(hints)

    # ------------------------------------------------------------ expressions

    def parse_expression(self) -> Expr:
        return self.parse_or()

    def parse_or(self) -> Expr:
        left = self.parse_and()
        while self.current.is_keyword("or"):
            self.advance()
            left = BinaryOp("or", left, self.parse_and())
        return left

    def parse_and(self) -> Expr:
        left = self.parse_not()
        while self.current.is_keyword("and"):
            self.advance()
            left = BinaryOp("and", left, self.parse_not())
        return left

    def parse_not(self) -> Expr:
        if self.current.is_keyword("not"):
            self.advance()
            return UnaryOp("not", self.parse_not())
        return self.parse_comparison()

    def parse_comparison(self) -> Expr:
        left = self.parse_additive()
        tok = self.current
        if tok.kind == "punct" and tok.text in _COMPARISON_OPS:
            op = self.advance().text
            return BinaryOp(op, left, self.parse_additive())
        if tok.is_keyword("in"):
            self.advance()
            return BinaryOp("in", left, self.parse_additive())
        if tok.is_keyword("not") and self.peek().is_keyword("in"):
            self.advance()
            self.advance()
            return BinaryOp("not_in", left, self.parse_additive())
        return left

    def parse_additive(self) -> Expr:
        left = self.parse_multiplicative()
        while self.current.kind == "punct" and self.current.text in ("+", "-"):
            op = self.advance().text
            left = BinaryOp(op, left, self.parse_multiplicative())
        return left

    def parse_multiplicative(self) -> Expr:
        left = self.parse_unary()
        while self.current.kind == "punct" and self.current.text in ("*", "/", "%"):
            op = self.advance().text
            left = BinaryOp(op, left, self.parse_unary())
        return left

    def parse_unary(self) -> Expr:
        if self.current.is_punct("-"):
            self.advance()
            return UnaryOp("-", self.parse_unary())
        return self.parse_postfix()

    def parse_postfix(self, allow_star: bool = False) -> Expr:
        expr = self.parse_primary()
        while True:
            if self.current.is_punct("."):
                if allow_star and self.peek().is_punct("*"):
                    self.advance()
                    self.advance()
                    return Star(expr)
                self.advance()
                field = self._path_component()
                expr = FieldAccess(expr, field)
            elif self.current.is_punct("["):
                self.advance()
                index = self.parse_expression()
                self.expect_punct("]")
                expr = IndexAccess(expr, index)
            else:
                return expr

    def _path_component(self) -> str:
        if self.current.kind in ("ident", "string"):
            return self.advance().text
        if self.current.kind == "keyword":  # keywords allowed as field names
            return self.advance().text
        raise self.error("expected a field name after '.'")

    def parse_primary(self) -> Expr:
        tok = self.current
        if tok.kind == "number":
            self.advance()
            text = tok.text
            if "." in text or "e" in text or "E" in text:
                return Literal(float(text))
            return Literal(int(text))
        if tok.kind == "string":
            self.advance()
            return Literal(tok.text)
        if tok.is_keyword("true"):
            self.advance()
            return Literal(True)
        if tok.is_keyword("false"):
            self.advance()
            return Literal(False)
        if tok.is_keyword("null"):
            self.advance()
            return Literal(None)
        if tok.is_keyword("missing"):
            self.advance()
            return MissingLiteral()
        if tok.is_keyword("exists"):
            self.advance()
            self.expect_punct("(")
            inner = self.parse_query_expression()
            self.expect_punct(")")
            return Exists(inner)
        if tok.is_keyword("case"):
            return self.parse_case()
        if tok.is_keyword("select"):
            # bare select block as an expression (inside EXISTS etc.)
            return self.parse_select_block()
        if tok.is_punct("$"):
            # Figure 20: statement parameters of predeployed queries
            self.advance()
            return VarRef("$" + self.expect_ident())
        if tok.is_punct("("):
            self.advance()
            if self.current.is_keyword("select") or self.current.is_keyword("let"):
                inner = self.parse_query_expression()
                self.expect_punct(")")
                if isinstance(inner, SelectBlock):
                    return Subquery(inner)
                return inner
            expr = self.parse_expression()
            self.expect_punct(")")
            return expr
        if tok.is_punct("{"):
            return self.parse_object_constructor()
        if tok.is_punct("["):
            return self.parse_array_constructor()
        if tok.kind == "ident" or (
            tok.kind == "keyword" and tok.text in ("value", "key")
        ):
            name = self.advance().text
            if self.current.is_punct("#"):  # library#function(...)
                self.advance()
                fn_name = self.expect_ident()
                args = self.parse_call_args()
                return Call(fn_name, tuple(args), library=name)
            if self.current.is_punct("("):
                args = self.parse_call_args()
                return Call(name, tuple(args))
            return VarRef(name)
        raise self.error("expected an expression")

    def parse_call_args(self) -> List[Expr]:
        self.expect_punct("(")
        args: List[Expr] = []
        if self.current.is_punct("*"):  # count(*)
            self.advance()
            args.append(Star(VarRef("*")))
            self.expect_punct(")")
            return args
        if not self.current.is_punct(")"):
            args.append(self.parse_query_expression())
            while self.accept_punct(","):
                args.append(self.parse_query_expression())
        self.expect_punct(")")
        return args

    def parse_case(self) -> Expr:
        self.expect_keyword("case")
        operand: Optional[Expr] = None
        if not self.current.is_keyword("when"):
            operand = self.parse_expression()
        whens: List[Tuple[Expr, Expr]] = []
        while self.accept_keyword("when"):
            cond = self.parse_expression()
            self.expect_keyword("then")
            value = self.parse_query_expression()
            whens.append((cond, value))
        if not whens:
            raise self.error("CASE requires at least one WHEN branch")
        default: Optional[Expr] = None
        if self.accept_keyword("else"):
            default = self.parse_query_expression()
        self.expect_keyword("end")
        return CaseExpr(operand, tuple(whens), default)

    def parse_object_constructor(self) -> Expr:
        self.expect_punct("{")
        fields: List[Tuple[str, Expr]] = []
        if not self.current.is_punct("}"):
            fields.append(self._object_field())
            while self.accept_punct(","):
                fields.append(self._object_field())
        self.expect_punct("}")
        return ObjectConstructor(tuple(fields))

    def _object_field(self) -> Tuple[str, Expr]:
        if self.current.kind in ("string", "ident"):
            name = self.advance().text
        elif self.current.kind == "keyword":
            name = self.advance().text
        else:
            raise self.error("expected an object field name")
        self.expect_punct(":")
        return name, self.parse_query_expression()

    def parse_array_constructor(self) -> Expr:
        self.expect_punct("[")
        items: List[Expr] = []
        if not self.current.is_punct("]"):
            items.append(self.parse_query_expression())
            while self.accept_punct(","):
                items.append(self.parse_query_expression())
        self.expect_punct("]")
        return ArrayConstructor(tuple(items))

    # --------------------------------------------------------------- queries

    def parse_query_expression(self) -> Expr:
        """An expression that may be a (LET-prefixed) SELECT block."""
        if self.current.is_keyword("let"):
            lets = self.parse_let_clauses()
            if self.current.is_keyword("select"):
                block = self.parse_select_block()
                block.lets = lets + block.lets
                return block
            # LET over a plain expression: desugar via a trivial select
            expr = self.parse_expression()
            block = SelectBlock(select_value=expr, lets=lets)
            return block
        if self.current.is_keyword("select"):
            return self.parse_select_block()
        return self.parse_expression()

    def parse_let_clauses(self) -> List[LetClause]:
        self.expect_keyword("let")
        lets = [self._one_let()]
        while self.accept_punct(","):
            lets.append(self._one_let())
        return lets

    def _one_let(self) -> LetClause:
        var = self.expect_ident()
        self.expect_punct("=")
        return LetClause(var, self.parse_query_expression())

    def parse_select_block(self) -> SelectBlock:
        self.expect_keyword("select")
        block = SelectBlock()
        block.hints = self.collect_hints()
        if self.accept_keyword("distinct"):
            block.distinct = True
        if self.accept_keyword("value"):
            block.select_value = self.parse_query_expression()
        else:
            block.projections.append(self.parse_projection())
            while self.accept_punct(","):
                block.projections.append(self.parse_projection())
        if self.accept_keyword("from"):
            block.from_terms.append(self.parse_from_term())
            while self.accept_punct(","):
                block.from_terms.append(self.parse_from_term())
        if self.current.is_keyword("let"):
            block.post_lets = self.parse_let_clauses()
        if self.accept_keyword("where"):
            block.where = self.parse_expression()
        if self.current.is_keyword("group"):
            self.advance()
            self.expect_keyword("by")
            block.group_keys.append(self.parse_group_key())
            while self.accept_punct(","):
                block.group_keys.append(self.parse_group_key())
        if self.current.is_keyword("order"):
            self.advance()
            self.expect_keyword("by")
            block.order_items.append(self.parse_order_item())
            while self.accept_punct(","):
                block.order_items.append(self.parse_order_item())
        if self.accept_keyword("limit"):
            block.limit = self.parse_expression()
        return block

    def parse_projection(self) -> Projection:
        expr = self.parse_projection_expr()
        alias: Optional[str] = None
        if isinstance(expr, Star):
            return Projection(expr)
        if self.accept_keyword("as"):
            alias = self.expect_ident()
        elif self.current.kind == "ident":
            alias = self.advance().text
        return Projection(expr, alias)

    def parse_projection_expr(self) -> Expr:
        """Like parse_expression but allows a trailing ``.*``."""
        # Star can only appear at the end of a postfix chain with no
        # surrounding operators, so try postfix-with-star first.
        saved = self.pos
        try:
            expr = self.parse_postfix(allow_star=True)
        except SqlppSyntaxError:
            self.pos = saved
            return self.parse_query_expression()
        if isinstance(expr, Star):
            return expr
        # Not a star: re-parse as a full expression (operators may follow).
        self.pos = saved
        return self.parse_query_expression()

    def parse_from_term(self) -> FromTerm:
        source = self.parse_expression()
        hints = self.collect_hints()
        var: Optional[str] = None
        if self.accept_keyword("as"):
            var = self.expect_ident()
        elif self.current.kind == "ident":
            var = self.advance().text
        if var is None:
            if isinstance(source, VarRef):
                var = source.name
            else:
                raise self.error("FROM term requires a binding variable")
        hints = hints + self.collect_hints()
        return FromTerm(source, var, hints)

    def parse_group_key(self) -> GroupKey:
        expr = self.parse_expression()
        alias: Optional[str] = None
        if self.accept_keyword("as"):
            alias = self.expect_ident()
        return GroupKey(expr, alias)

    def parse_order_item(self) -> OrderItem:
        expr = self.parse_expression()
        descending = False
        if self.accept_keyword("desc"):
            descending = True
        elif self.accept_keyword("asc"):
            descending = False
        return OrderItem(expr, descending)

    # ------------------------------------------------------------ statements

    def parse_statement(self) -> Statement:
        tok = self.current
        if tok.is_keyword("create"):
            return self._parse_create()
        if tok.is_keyword("connect"):
            return self._parse_connect_feed()
        if tok.is_keyword("start"):
            self.advance()
            self.expect_keyword("feed")
            return StartFeed(self.expect_ident())
        if tok.is_keyword("stop"):
            self.advance()
            self.expect_keyword("feed")
            return StopFeed(self.expect_ident())
        if tok.is_keyword("insert") or tok.is_keyword("upsert"):
            upsert = tok.text == "upsert"
            self.advance()
            self.expect_keyword("into")
            dataset = self.expect_ident()
            self.expect_punct("(")
            query = self.parse_query_expression()
            self.expect_punct(")")
            return InsertStatement(dataset, query, upsert=upsert)
        if tok.is_keyword("delete"):
            self.advance()
            self.expect_keyword("from")
            dataset = self.expect_ident()
            var = self.expect_ident() if self.current.kind == "ident" else dataset
            where = None
            if self.accept_keyword("where"):
                where = self.parse_expression()
            return DeleteStatement(dataset, var, where)
        if tok.is_keyword("select") or tok.is_keyword("let"):
            return QueryStatement(self.parse_query_expression())
        raise self.error("expected a statement")

    def parse_statements(self) -> List[Statement]:
        statements: List[Statement] = []
        while self.current.kind != "eof":
            statements.append(self.parse_statement())
            while self.accept_punct(";"):
                pass
        return statements

    def _parse_connect_feed(self) -> Statement:
        self.expect_keyword("connect")
        self.expect_keyword("feed")
        feed = self.expect_ident()
        self.expect_keyword("to")
        self.expect_keyword("dataset")
        dataset = self.expect_ident()
        functions: List[str] = []
        while self.accept_keyword("apply"):
            self.expect_keyword("function")
            functions.append(self.expect_ident())
            while self.accept_punct(","):
                functions.append(self.expect_ident())
        return ConnectFeed(feed, dataset, functions)

    def _parse_create(self) -> Statement:
        self.expect_keyword("create")
        tok = self.current
        if tok.is_keyword("type"):
            self.advance()
            name = self.expect_ident()
            self.expect_keyword("as")
            is_open = True
            if self.accept_keyword("closed"):
                is_open = False
            else:
                self.accept_keyword("open")
            self.expect_punct("{")
            fields = {}
            if not self.current.is_punct("}"):
                fname, fspec = self._type_field()
                fields[fname] = fspec
                while self.accept_punct(","):
                    fname, fspec = self._type_field()
                    fields[fname] = fspec
            self.expect_punct("}")
            return CreateType(name, fields, is_open)
        if tok.is_keyword("dataset"):
            self.advance()
            name = self.expect_ident()
            self.expect_punct("(")
            type_name = self.expect_ident()
            self.expect_punct(")")
            self.expect_keyword("primary")
            self.expect_keyword("key")
            key = self.expect_ident()
            while self.accept_punct("."):
                key += "." + self.expect_ident()
            return CreateDataset(name, type_name, key)
        if tok.is_keyword("index"):
            self.advance()
            name = self.expect_ident()
            self.expect_keyword("on")
            dataset = self.expect_ident()
            self.expect_punct("(")
            fields = [self._dotted_ident()]
            while self.accept_punct(","):
                fields.append(self._dotted_ident())
            self.expect_punct(")")
            index_type = "btree"
            if self.accept_keyword("type"):
                if self.accept_keyword("rtree"):
                    index_type = "rtree"
                else:
                    self.expect_keyword("btree")
            return CreateIndex(name, dataset, fields, index_type)
        if tok.is_keyword("function"):
            self.advance()
            name = self.expect_ident()
            self.expect_punct("(")
            params = []
            if not self.current.is_punct(")"):
                params.append(self.expect_ident())
                while self.accept_punct(","):
                    params.append(self.expect_ident())
            self.expect_punct(")")
            self.expect_punct("{")
            body = self.parse_query_expression()
            self.expect_punct("}")
            return CreateFunction(FunctionDefinition(name, params, body))
        if tok.is_keyword("feed"):
            self.advance()
            name = self.expect_ident()
            self.expect_keyword("with")
            obj = self.parse_object_constructor()
            config = {}
            for fname, fexpr in obj.fields:
                if not isinstance(fexpr, Literal):
                    raise self.error("feed config values must be literals")
                config[fname] = fexpr.value
            return CreateFeed(name, config)
        raise self.error("expected TYPE, DATASET, INDEX, FUNCTION, or FEED")

    def _type_field(self) -> Tuple[str, str]:
        name = self.expect_ident()
        self.expect_punct(":")
        spec = self.expect_ident()
        if self.accept_punct("?"):
            spec += "?"
        return name, spec

    def _dotted_ident(self) -> str:
        name = self.expect_ident()
        while self.accept_punct("."):
            name += "." + self.expect_ident()
        return name


# ------------------------------------------------------------------- facade


def parse_expression(source: str) -> Expr:
    parser = Parser(source)
    expr = parser.parse_query_expression()
    if parser.current.kind != "eof":
        raise parser.error("unexpected trailing input")
    return expr


def parse_query(source: str) -> Expr:
    return parse_expression(source)


def parse_function(source: str) -> FunctionDefinition:
    parser = Parser(source)
    stmt = parser.parse_statement()
    if not isinstance(stmt, CreateFunction):
        raise SqlppSyntaxError("expected a CREATE FUNCTION statement")
    return stmt.definition


def parse_statement(source: str) -> Statement:
    parser = Parser(source)
    stmt = parser.parse_statement()
    parser.accept_punct(";")
    if parser.current.kind != "eof":
        raise parser.error("unexpected trailing input")
    return stmt


def parse_statements(source: str) -> List[Statement]:
    return Parser(source).parse_statements()
