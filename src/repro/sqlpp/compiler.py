"""Compiling SQL++ queries into Hyracks jobs (the Figure 2 path).

Analytical queries over a single stored dataset compile into a partitioned
scan -> let/filter -> (group-by | sort | limit) -> project pipeline — the
same translation Figure 2 sketches for the country-count query.  Queries
outside that shape (joins between datasets in the outer FROM, nested
outer-FROM sources) are evaluated by the interpreter on the Cluster
Controller node, with their work charged through the work meter; this
mirrors AsterixDB evaluating a sequential plan section centrally.

Either way the *result is identical* — the compiler is a physical-plan
choice, which the test suite asserts by differential testing against the
interpreter.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..errors import SqlppAnalysisError
from ..hyracks.connectors import HashPartition, OneToOne
from ..hyracks.executor import JobResult
from ..hyracks.job import JobSpecification, OperatorDescriptor
from ..hyracks.operators import (
    AssignOperator,
    CollectSink,
    DatasetScanSource,
    DatasetWriteSink,
    FilterOperator,
    ListSource,
    SortOperator,
)
from ..hyracks.operators.sort_group import Aggregator, HashGroupByOperator
from .analysis import contains_aggregate
from .ast import Expr, SelectBlock, VarRef
from .evaluator import (
    EvaluationContext,
    Env,
    Evaluator,
    _sort_key,
    _truthy,
)


class CompiledQuery:
    """A query bound to an execution strategy."""

    def __init__(self, strategy: str, runner, plan: Optional[str] = None):
        self.strategy = strategy  # 'hyracks' | 'interpreter'
        self._runner = runner
        self.plan = plan or strategy

    def execute(self) -> List:
        return self._runner()


def explain_plan(block, catalog: Dict[str, object]) -> str:
    """Render the physical plan a parallelizable SELECT compiles to.

    Mirrors AsterixDB's logical-plan EXPLAIN at the granularity the paper's
    Figure 2 sketch uses: one line per operator, source first.
    """
    if not isinstance(block, SelectBlock):
        return "interpreter: non-select expression"
    lines: List[str] = []
    if len(block.from_terms) == 1 and isinstance(block.from_terms[0].source, VarRef):
        name = block.from_terms[0].source.name
        if name in catalog:
            dataset = catalog[name]
            lines.append(
                f"scan {name} ({dataset.num_partitions} partitions)"
            )
        else:
            lines.append(f"iterate {name}")
    else:
        sources = ", ".join(
            term.source.name if isinstance(term.source, VarRef) else "<expr>"
            for term in block.from_terms
        ) or "<constant>"
        lines.append(f"interpreter join over [{sources}]")
    if block.post_lets:
        lines.append(
            "assign " + ", ".join(let.var for let in block.post_lets)
        )
    if block.where is not None:
        lines.append("filter <where>")
    if block.group_keys:
        lines.append(f"hash group-by ({len(block.group_keys)} key(s))")
    if block.order_items:
        lines.append(f"sort ({len(block.order_items)} key(s))")
    if block.limit is not None:
        lines.append("limit")
    lines.append("project" if block.select_value is None else "project value")
    return " -> ".join(lines)


class QueryCompiler:
    """Chooses and builds the physical plan for a top-level query."""

    def __init__(self, cluster, catalog: Dict[str, object], registry=None):
        self.cluster = cluster
        self.catalog = catalog
        self.registry = registry

    def fresh_context(self) -> EvaluationContext:
        return EvaluationContext(self.catalog, functions=self.registry)

    # ------------------------------------------------------------- dispatch

    def compile(self, query: Expr) -> CompiledQuery:
        if isinstance(query, SelectBlock) and self._is_parallelizable(query):
            return CompiledQuery(
                "hyracks",
                lambda: self._run_hyracks(query),
                plan="hyracks: " + explain_plan(query, self.catalog),
            )
        return CompiledQuery(
            "interpreter",
            lambda: self._run_interpreter(query),
            plan="interpreter: " + explain_plan(query, self.catalog),
        )

    def _is_parallelizable(self, block: SelectBlock) -> bool:
        """Single stored-dataset FROM, no top-level LETs before SELECT."""
        if len(block.from_terms) != 1 or block.lets:
            return False
        source = block.from_terms[0].source
        if not (isinstance(source, VarRef) and source.name in self.catalog):
            return False
        if block.distinct:
            return False
        # Aggregates without GROUP BY need a global fold; keep those central.
        if not block.group_keys and self._has_aggregate(block):
            return False
        return True

    def _has_aggregate(self, block: SelectBlock) -> bool:
        if block.select_value is not None and contains_aggregate(block.select_value):
            return True
        return any(contains_aggregate(p.expr) for p in block.projections)

    # ------------------------------------------------------- interpreter path

    def _run_interpreter(self, query: Expr) -> List:
        ctx = self.fresh_context()
        result = Evaluator(ctx).evaluate_query(query)
        return result if isinstance(result, list) else [result]

    # ----------------------------------------------------------- hyracks path

    def _run_hyracks(self, block: SelectBlock) -> List:
        ctx = self.fresh_context()
        evaluator = Evaluator(ctx)
        term = block.from_terms[0]
        dataset = self.catalog[term.source.name]
        var = term.var
        n = self.cluster.num_nodes

        def bind(record: dict) -> Optional[dict]:
            """Evaluate post-LETs into an env record for downstream exprs."""
            env = Env({var: record})
            binding = {var: record}
            for let in block.post_lets:
                value = evaluator.evaluate(let.expr, env)
                env.vars[let.var] = value
                binding[let.var] = value
            return binding

        def where_ok(binding: dict) -> bool:
            if block.where is None:
                return True
            return _truthy(evaluator.evaluate(block.where, Env(dict(binding))))

        spec = JobSpecification("query")
        scan = spec.add_operator(
            OperatorDescriptor(
                "scan", lambda c: DatasetScanSource(c, dataset), partitions=n
            )
        )
        assign = spec.add_operator(
            OperatorDescriptor("assign", lambda c: AssignOperator(c, bind), n)
        )
        spec.connect(scan, assign, OneToOne())
        upstream = assign
        if block.where is not None:
            flt = spec.add_operator(
                OperatorDescriptor("filter", lambda c: FilterOperator(c, where_ok), n)
            )
            spec.connect(upstream, flt, OneToOne())
            upstream = flt

        results: List = []
        if block.group_keys:
            upstream = self._attach_group_by(spec, upstream, block, evaluator, n)
            sink_input = self._attach_order_limit_project(
                spec, upstream, block, evaluator, grouped=True
            )
        else:
            sink_input = self._attach_order_limit_project(
                spec, upstream, block, evaluator, grouped=False
            )
        sink = spec.add_operator(
            OperatorDescriptor("result", lambda c: CollectSink(c, results), 1)
        )
        spec.connect(sink_input, sink, OneToOne())
        self.cluster.controller.run_job(spec)
        return results

    def _attach_group_by(self, spec, upstream, block, evaluator, n):
        key_exprs = [k.expr for k in block.group_keys]

        def key_fn(binding: dict):
            env = Env(dict(binding))
            return tuple(
                _sort_key(evaluator.evaluate(expr, env)) for expr in key_exprs
            )

        def raw_keys(binding: dict):
            env = Env(dict(binding))
            return tuple(evaluator.evaluate(expr, env) for expr in key_exprs)

        collect = Aggregator(
            "__group__", lambda: [], lambda acc, record: acc + [record]
        )
        first_key = Aggregator(
            "__keys__",
            lambda: None,
            lambda acc, record: acc if acc is not None else raw_keys(record),
        )
        gby = spec.add_operator(
            OperatorDescriptor(
                "group-by",
                lambda c: HashGroupByOperator(
                    c, key_fn, ["__hash__"], [collect, first_key]
                ),
                partitions=n,
            )
        )
        spec.connect(upstream, gby, HashPartition(key_fn))
        return gby

    def _attach_order_limit_project(self, spec, upstream, block, evaluator, grouped):
        n_out = 1 if (block.order_items or block.limit is not None) else None

        def project(binding: dict):
            if grouped:
                return self._project_group(block, evaluator, binding)
            env = Env(dict(binding))
            return evaluator._project(block, env)

        if block.order_items:

            def order_key(binding: dict):
                if grouped:
                    env = self._group_env(block, evaluator, binding)
                else:
                    env = Env(dict(binding))
                # ORDER BY may reference SELECT output aliases, so the
                # sort key is computed against the projected row too.
                row = evaluator._project(block, env)
                return evaluator._order_key_for(block, env, row)

            sorter = spec.add_operator(
                OperatorDescriptor(
                    "order-by", lambda c: SortOperator(c, order_key), partitions=1
                )
            )
            spec.connect(upstream, sorter, OneToOne())
            upstream = sorter
        if block.limit is not None:
            ctx0 = self.fresh_context()
            limit_value = Evaluator(ctx0).evaluate_query(block.limit)
            from ..hyracks.operators import LimitOperator

            limiter = spec.add_operator(
                OperatorDescriptor(
                    "limit",
                    lambda c: LimitOperator(c, int(limit_value)),
                    partitions=1,
                )
            )
            spec.connect(upstream, limiter, OneToOne())
            upstream = limiter
        projector = spec.add_operator(
            OperatorDescriptor(
                "project",
                lambda c: AssignOperator(c, project),
                partitions=n_out or upstream.partitions,
            )
        )
        spec.connect(upstream, projector, OneToOne())
        return projector

    def _group_env(self, block, evaluator, group_record: dict) -> Env:
        env = Env({})
        env.group = [Env(dict(binding)) for binding in group_record["__group__"]]
        env.group_key_values = {}
        keys = group_record["__keys__"] or ()
        for key_spec, value in zip(block.group_keys, keys):
            env.group_key_values[key_spec.expr] = value
            if key_spec.alias:
                env.vars[key_spec.alias] = value
            else:
                from .evaluator import _default_alias

                name = _default_alias(key_spec.expr, fallback=None)
                if name:
                    env.vars.setdefault(name, value)
        return env

    def _project_group(self, block, evaluator, group_record: dict):
        env = self._group_env(block, evaluator, group_record)
        return evaluator._project(block, env)


def run_insert(
    cluster,
    catalog: Dict[str, object],
    dataset_name: str,
    rows: List[dict],
    upsert: bool = False,
) -> JobResult:
    """The insert job: hash-partition rows by primary key and store them."""
    if dataset_name not in catalog:
        raise SqlppAnalysisError(f"unknown dataset: {dataset_name}")
    dataset = catalog[dataset_name]
    from ..adm.schema import primary_key_of

    n = cluster.num_nodes
    spec = JobSpecification(f"insert-{dataset_name}")
    src = spec.add_operator(
        OperatorDescriptor("rows", lambda c: ListSource(c, rows), partitions=n)
    )
    sink = spec.add_operator(
        OperatorDescriptor(
            "store",
            lambda c: DatasetWriteSink(c, dataset, "upsert" if upsert else "insert"),
            partitions=n,
        )
    )
    spec.connect(
        src, sink, HashPartition(lambda r: primary_key_of(r, dataset.primary_key))
    )
    return cluster.controller.run_job(spec)
