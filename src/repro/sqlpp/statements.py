"""Statement AST nodes: DDL and DML (the paper's Figures 1, 4, 10-12)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from .ast import Expr, FunctionDefinition


class Statement:
    __slots__ = ()


@dataclass
class CreateType(Statement):
    name: str
    fields: Dict[str, str]  # field name -> type spec string ("int64", "point?")
    is_open: bool = True


@dataclass
class CreateDataset(Statement):
    name: str
    type_name: str
    primary_key: str


@dataclass
class CreateIndex(Statement):
    name: str
    dataset: str
    fields: List[str]
    index_type: str = "btree"  # 'btree' | 'rtree'


@dataclass
class CreateFunction(Statement):
    definition: FunctionDefinition


@dataclass
class CreateFeed(Statement):
    name: str
    config: Dict[str, object]


@dataclass
class ConnectFeed(Statement):
    feed: str
    dataset: str
    apply_functions: List[str] = field(default_factory=list)


@dataclass
class StartFeed(Statement):
    feed: str


@dataclass
class StopFeed(Statement):
    feed: str


@dataclass
class InsertStatement(Statement):
    dataset: str
    query: Expr
    upsert: bool = False


@dataclass
class DeleteStatement(Statement):
    """``DELETE FROM dataset v WHERE cond`` — records matching cond go."""

    dataset: str
    var: str
    where: Expr = None


@dataclass
class QueryStatement(Statement):
    query: Expr
