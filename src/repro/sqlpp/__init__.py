"""SQL++ substrate: lexer, parser, analysis, evaluation."""

from .analysis import (
    dataset_references,
    free_vars,
    is_stateful,
    split_conjuncts,
)
from .ast import Expr, FunctionDefinition, SelectBlock
from .evaluator import EvaluationContext, Env, Evaluator
from .functions import BUILTINS, edit_distance
from .parser import (
    Parser,
    parse_expression,
    parse_function,
    parse_query,
    parse_statement,
    parse_statements,
)

__all__ = [
    "BUILTINS",
    "EvaluationContext",
    "Env",
    "Evaluator",
    "Expr",
    "FunctionDefinition",
    "Parser",
    "SelectBlock",
    "dataset_references",
    "edit_distance",
    "free_vars",
    "is_stateful",
    "parse_expression",
    "parse_function",
    "parse_query",
    "parse_statement",
    "parse_statements",
    "split_conjuncts",
]
