"""Frames: the unit of data transport inside and between Hyracks jobs.

Data in a runtime Hyracks job flows in frames containing multiple objects
(Section 2.2).  Operators read an incoming frame, process its records, and
push produced frames downstream through connectors.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List

DEFAULT_FRAME_CAPACITY = 64


class Frame:
    """A batch of ADM records moving through the runtime."""

    __slots__ = ("records",)

    def __init__(self, records: Iterable[dict] = ()):
        self.records: List[dict] = list(records)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def __repr__(self):
        return f"Frame({len(self.records)} records)"


def frames_of(
    records: Iterable[dict], capacity: int = DEFAULT_FRAME_CAPACITY
) -> Iterator[Frame]:
    """Pack an iterable of records into frames of at most ``capacity``."""
    if capacity < 1:
        raise ValueError("frame capacity must be >= 1")
    batch: List[dict] = []
    for record in records:
        batch.append(record)
        if len(batch) >= capacity:
            yield Frame(batch)
            batch = []
    if batch:
        yield Frame(batch)


class FrameWriter:
    """Receiver protocol for pushed frames (the Hyracks IFrameWriter)."""

    __slots__ = ()

    def open(self) -> None:
        """Prepare to receive frames."""

    def next_frame(self, frame: Frame) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """No more frames will arrive."""

    def fail(self) -> None:
        """The producer failed; release resources."""
        self.close()
