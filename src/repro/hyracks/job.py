"""Job specifications: DAGs of operator and connector descriptors.

A *job* is the unit of work executed on the Hyracks platform; its *job
specification* describes data flow as a DAG of operators (computation) and
connectors (routing) — Section 2.2 of the paper.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..errors import JobSpecificationError
from .frame import Frame, FrameWriter


class OperatorContext:
    """Per-partition runtime context handed to each operator instance."""

    def __init__(self, partition: int, num_partitions: int, node: int, runtime):
        self.partition = partition
        self.num_partitions = num_partitions
        self.node = node
        self.runtime = runtime  # LocalJobRunner running this job
        self.busy_seconds = 0.0

    def charge(self, seconds: float) -> None:
        """Add simulated busy time to this partition's node."""
        self.busy_seconds += seconds

    @property
    def cost(self):
        return self.runtime.cost_model


class Operator(FrameWriter):
    """Base class for per-partition operator instances (push model).

    Subclasses receive frames via :meth:`next_frame` and push produced
    frames to ``self.output``.  Source operators ignore ``next_frame`` and
    generate data in :meth:`run`.
    """

    def __init__(self, ctx: OperatorContext):
        self.ctx = ctx
        self.output: Optional[FrameWriter] = None

    def set_output(self, writer: FrameWriter) -> None:
        self.output = writer

    def emit(self, frame: Frame) -> None:
        if self.output is not None and len(frame):
            self.output.next_frame(frame)

    # Default pass-through lifecycle; subclasses override what they need.
    def open(self) -> None:
        if self.output is not None:
            self.output.open()

    def next_frame(self, frame: Frame) -> None:
        self.emit(frame)

    def close(self) -> None:
        if self.output is not None:
            self.output.close()


class SourceOperator(Operator):
    """An operator with no inputs; the executor calls :meth:`run`."""

    def run(self) -> None:
        raise NotImplementedError


class OperatorDescriptor:
    """Describes one logical operator: a factory plus a partition count."""

    def __init__(
        self,
        name: str,
        factory: Callable[[OperatorContext], Operator],
        partitions: int,
        nodes: Optional[List[int]] = None,
    ):
        if partitions < 1:
            raise JobSpecificationError(f"operator {name}: partitions must be >= 1")
        if nodes is not None and len(nodes) != partitions:
            raise JobSpecificationError(
                f"operator {name}: placement list length must equal partitions"
            )
        self.name = name
        self.factory = factory
        self.partitions = partitions
        self.nodes = nodes  # explicit node placement per partition, or None
        self.op_id: Optional[int] = None  # assigned by JobSpecification


class ConnectorDescriptor:
    """Describes routing between a producer and a consumer operator."""

    def __init__(self, producer: OperatorDescriptor, consumer: OperatorDescriptor, strategy):
        self.producer = producer
        self.consumer = consumer
        self.strategy = strategy  # a connectors.RoutingStrategy


class JobSpecification:
    """A DAG of operator descriptors wired by connector descriptors."""

    def __init__(self, name: str = "job"):
        self.name = name
        self.operators: List[OperatorDescriptor] = []
        self.connectors: List[ConnectorDescriptor] = []

    def add_operator(self, op: OperatorDescriptor) -> OperatorDescriptor:
        op.op_id = len(self.operators)
        self.operators.append(op)
        return op

    def connect(self, producer: OperatorDescriptor, consumer: OperatorDescriptor, strategy) -> None:
        if producer not in self.operators or consumer not in self.operators:
            raise JobSpecificationError(
                "connect() called with an operator not added to this job"
            )
        self.connectors.append(ConnectorDescriptor(producer, consumer, strategy))

    # ------------------------------------------------------------- validation

    def inbound(self, op: OperatorDescriptor) -> List[ConnectorDescriptor]:
        return [c for c in self.connectors if c.consumer is op]

    def outbound(self, op: OperatorDescriptor) -> List[ConnectorDescriptor]:
        return [c for c in self.connectors if c.producer is op]

    def sources(self) -> List[OperatorDescriptor]:
        return [op for op in self.operators if not self.inbound(op)]

    def validate(self) -> None:
        """Check the DAG: no cycles, every non-source has inputs."""
        if not self.operators:
            raise JobSpecificationError("job has no operators")
        if not self.sources():
            raise JobSpecificationError("job has no source operators (cycle?)")
        # Kahn's algorithm for cycle detection + topological order
        self.topological_order()
        for conn in self.connectors:
            if conn.producer is conn.consumer:
                raise JobSpecificationError(
                    f"self-loop on operator {conn.producer.name}"
                )

    def topological_order(self) -> List[OperatorDescriptor]:
        indegree: Dict[int, int] = {op.op_id: 0 for op in self.operators}
        for conn in self.connectors:
            indegree[conn.consumer.op_id] += 1
        ready = [op for op in self.operators if indegree[op.op_id] == 0]
        order: List[OperatorDescriptor] = []
        while ready:
            op = ready.pop(0)
            order.append(op)
            for conn in self.outbound(op):
                indegree[conn.consumer.op_id] -= 1
                if indegree[conn.consumer.op_id] == 0:
                    ready.append(conn.consumer)
        if len(order) != len(self.operators):
            raise JobSpecificationError(f"job {self.name!r} contains a cycle")
        return order
