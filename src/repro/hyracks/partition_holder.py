"""Partition holders: bounded cross-job frame exchange (paper §5.3).

Data exchanges in Hyracks are limited to the scope of one job; the paper
introduces *partition holders* — operators guarding a runtime partition
with a bounded frame queue — so the intake, computing, and storage jobs can
hand frames to each other through memory.

* A **passive** holder receives frames from its upstream operators and
  waits for another job to *pull* them (used at the tail of the intake
  job; computing jobs request batches from it).
* An **active** holder receives frames from other jobs and *pushes* them
  to its downstream operators (used at the head of the storage job).

Each holder registers with a :class:`PartitionHolderManager` under a
(holder id, partition) key so jobs can locate their peers.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from ..errors import PartitionHolderError
from .frame import Frame


class PassivePartitionHolder:
    """Pull-style holder: a bounded FIFO of frames plus an EOF marker."""

    def __init__(self, holder_id: str, partition: int, capacity_frames: int = 64):
        if capacity_frames < 1:
            raise ValueError("capacity_frames must be >= 1")
        self.holder_id = holder_id
        self.partition = partition
        self.capacity = capacity_frames
        self._queue: Deque[Frame] = deque()
        self._eof = False
        self.offered = 0
        self.rejected = 0  # backpressure events
        self.pulled_records = 0
        self.high_water = 0
        self.blocked_seconds = 0.0  # producer time stalled on this holder
        self.disconnects = 0  # injected disconnect windows waited out
        self.disconnected_seconds = 0.0  # producer time waiting on reconnect

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def is_full(self) -> bool:
        return len(self._queue) >= self.capacity

    @property
    def eof(self) -> bool:
        return self._eof

    @property
    def queued_records(self) -> int:
        return sum(len(f) for f in self._queue)

    def offer(self, frame: Frame) -> bool:
        """Enqueue a frame; returns False (backpressure) when full."""
        if self._eof:
            raise PartitionHolderError(
                f"holder {self.holder_id}[{self.partition}] is closed"
            )
        if self.is_full:
            self.rejected += 1
            return False
        self._queue.append(frame)
        self.offered += 1
        self.high_water = max(self.high_water, len(self._queue))
        return True

    def end(self) -> None:
        """Mark EOF: no more frames will be offered (the feed stopped)."""
        self._eof = True

    def note_blocked(self, seconds: float) -> None:
        """Charge simulated time a producer spent blocked on this holder."""
        if seconds < 0:
            raise ValueError("blocked time cannot be negative")
        self.blocked_seconds += seconds

    def note_disconnected(self, seconds: float) -> None:
        """Charge simulated time a producer waited out a disconnect."""
        if seconds < 0:
            raise ValueError("disconnected time cannot be negative")
        self.disconnects += 1
        self.disconnected_seconds += seconds

    def poll_batch(self, max_records: int) -> List[dict]:
        """Pull up to ``max_records`` records, preserving FIFO order.

        A partially consumed frame is split; the remainder stays queued.
        """
        out: List[dict] = []
        while self._queue and len(out) < max_records:
            frame = self._queue[0]
            need = max_records - len(out)
            if len(frame) <= need:
                out.extend(frame.records)
                self._queue.popleft()
            else:
                out.extend(frame.records[:need])
                self._queue[0] = Frame(frame.records[need:])
        self.pulled_records += len(out)
        return out

    @property
    def drained(self) -> bool:
        """True once EOF was signalled and every record was pulled."""
        return self._eof and not self._queue


class ActivePartitionHolder:
    """Push-style holder: forwards received frames to a downstream writer."""

    def __init__(self, holder_id: str, partition: int, downstream):
        self.holder_id = holder_id
        self.partition = partition
        self.downstream = downstream
        self.received = 0
        self._open = False

    def open(self) -> None:
        if not self._open:
            self.downstream.open()
            self._open = True

    def push(self, frame: Frame) -> None:
        if not self._open:
            self.open()
        self.received += len(frame)
        self.downstream.next_frame(frame)

    def close(self) -> None:
        if self._open:
            self.downstream.close()
            self._open = False


class PartitionHolderManager:
    """Cluster-wide registry: (holder id, partition) -> holder."""

    def __init__(self):
        self._holders: Dict[Tuple[str, int], object] = {}

    def register(self, holder) -> None:
        key = (holder.holder_id, holder.partition)
        if key in self._holders:
            raise PartitionHolderError(f"holder already registered: {key}")
        self._holders[key] = holder

    def lookup(self, holder_id: str, partition: int):
        key = (holder_id, partition)
        if key not in self._holders:
            raise PartitionHolderError(f"no such holder: {key}")
        return self._holders[key]

    def unregister(self, holder_id: str, partition: Optional[int] = None) -> None:
        if partition is not None:
            self._holders.pop((holder_id, partition), None)
            return
        for key in [k for k in self._holders if k[0] == holder_id]:
            del self._holders[key]

    def holders_for(self, holder_id: str) -> List[object]:
        return [h for (hid, _p), h in sorted(self._holders.items()) if hid == holder_id]
