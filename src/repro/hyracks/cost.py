"""The calibrated cost model driving the simulated cluster clock.

The reproduction executes every operator's *logic* for real (records are
actually parsed, joined, enriched, and stored) but runs on one machine, so
wall-clock time cannot show 24-node scale-out.  Instead each operator
charges simulated seconds to the node it is placed on, and a job's makespan
is ``startup + max-over-nodes(busy)``.

Constants are calibrated so that the reproduction lands in the same regime
as the paper's testbed (dual-core Opteron 2212, GbE):

* ``parse_per_record`` ≈ 65 µs ⇒ one parsing node sustains ~15 k records/s,
  matching Figure 24's flat "Static Ingestion" line;
* ``job_invoke_base/per_node`` give a predeployed computing-job startup of
  ~10 ms on 24 nodes, matching Section 7.1's observed refresh rates
  (68/27/10 jobs/s at 1X/4X/16X batches);
* ``job_compile`` makes a non-predeployed job pay query compilation and
  distribution on every invocation (the §5.1 ablation);
* ``lsm_active_penalty`` inflates reference-data access while the reference
  dataset's in-memory LSM component is active (the §7.3 effect).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class CostModel:
    """All simulated-time constants, in seconds."""

    # Feed intake side
    receive_per_record: float = 22.0e-6  # adapter: accept raw bytes, enqueue
    parse_per_record: float = 65.0e-6  # JSON bytes -> typed ADM record
    intake_fanout_per_record: float = 0.35e-6  # round-robin partitioner, per target hop

    # Generic operator work
    move_per_record: float = 2.0e-6  # pass-through / projection / assign
    filter_per_record: float = 1.5e-6
    transfer_per_record: float = 4.0e-6  # cross-node connector hop
    sort_per_record_log: float = 1.2e-6  # multiplied by log2(n)
    group_per_record: float = 2.5e-6
    hash_build_per_record: float = 3.0e-6
    hash_probe_per_record: float = 2.2e-6
    nlj_per_pair: float = 0.35e-6  # nested-loop join, per compared pair
    btree_probe: float = 6.0e-6  # one index descent
    rtree_probe_per_node: float = 1.8e-6  # per R-tree node visited
    scan_per_record: float = 1.6e-6  # dataset scan

    # Enrichment work (charged by the UDF evaluator via the WorkMeter)
    udf_eval_base: float = 4.0e-6  # per input record
    edit_distance_per_cell: float = 0.010e-6  # per DP cell (engine builtin)
    spatial_test_per_pair: float = 0.12e-6  # exact geometric predicate
    java_op_cost: float = 0.006e-6  # one compiled-UDF inner-loop operation
    inlj_broadcast_per_record: float = 200.0e-6  # ship+handle one probe
    #                       record on one receiving node (INLJ broadcast)
    java_resource_load_per_line: float = 1.0e-6
    # Cross-batch state-cache reuse: a hit swaps the rebuild charges for a
    # validation + pointer-install charge plus a small per-record touch
    # (the reused table still occupies memory bandwidth when probed).
    state_cache_hit: float = 8.0e-6  # version check + install one entry
    state_cache_reuse_per_record: float = 0.05e-6  # per record reused
    # Key-level enrichment memo: a hit swaps one probe + its per-match
    # shaping for a version check + canonical-key lookup plus a per-record
    # touch of the reused result (cheaper than the probe it replaces, but
    # never free — the memo'd value still crosses memory).
    memo_hit: float = 1.0e-6  # version check + one canonical-key lookup
    memo_reuse_per_record: float = 0.05e-6  # per reused result record

    # Storage side
    store_per_record: float = 18.0e-6  # LSM write incl. log flush share
    log_flush_per_batch: float = 1.2e-3  # group-commit style log force
    lsm_active_penalty: float = 2.0  # multiplier on reference reads while
    #                                  the ref dataset's memtable is active
    lsm_component_read: float = 2.5e-6  # per extra LSM component consulted

    # Job lifecycle
    job_compile: float = 45.0e-3  # parse+optimize+codegen a job spec
    # UDF-bearing computing jobs pay extra per-invocation setup (UDF
    # evaluator/runtime initialization, reference-dataset locks, result
    # sync) that grows with cluster size — the §7.4 observation that the
    # cheap hash-join UDFs barely speed up from 6 to 24 nodes while the
    # no-UDF refresh rates of §7.1 stay high.
    udf_job_overhead_base: float = 80.0e-3
    udf_job_overhead_per_node: float = 12.0e-3
    job_distribute_per_node: float = 2.0e-3  # ship the spec to one node
    job_invoke_base: float = 4.0e-3  # invoke a predeployed job
    job_invoke_per_node: float = 0.45e-3  # per-node task activation
    job_teardown_base: float = 1.0e-3

    def job_startup(self, num_nodes: int, predeployed: bool) -> float:
        """Simulated cost of getting a job running on ``num_nodes`` nodes."""
        if predeployed:
            return self.job_invoke_base + self.job_invoke_per_node * num_nodes
        return (
            self.job_compile
            + self.job_distribute_per_node * num_nodes
            + self.job_invoke_base
            + self.job_invoke_per_node * num_nodes
        )

    def job_teardown(self, num_nodes: int) -> float:
        return self.job_teardown_base + 0.1e-3 * num_nodes

    def udf_job_overhead(self, num_nodes: int) -> float:
        """Extra per-invocation cost of a computing job with UDFs attached."""
        return self.udf_job_overhead_base + self.udf_job_overhead_per_node * num_nodes


DEFAULT_COST_MODEL = CostModel()


@dataclass
class WorkMeter:
    """Work-unit counters incremented by enrichment internals.

    The SQL++ interpreter and the UDF library cannot charge a clock
    directly (they are shared, clock-agnostic code), so they count work
    units here; the UDF evaluator operator converts the counts to simulated
    seconds using the :class:`CostModel`.

    ``scale`` is the *reference work scale*: benchmarks run against
    reference datasets scaled down from the paper's cardinalities (e.g.
    1/100), so the counters whose magnitude is proportional to reference
    cardinality — scans, hash builds, per-candidate predicate work — are
    multiplied back up when charged.  Per-probe counters (one hash/B-tree
    descent per record) are cardinality-insensitive and stay unscaled.
    """

    records_scanned: int = 0
    hash_builds: int = 0
    hash_probes: int = 0
    btree_probes: int = 0
    rtree_nodes_visited: int = 0
    nlj_pairs: int = 0
    edit_distance_cells: int = 0
    spatial_tests: int = 0
    sort_items: int = 0
    group_items: int = 0
    penalized_reads: int = 0  # reference reads under LSM update activity
    java_ops: int = 0  # compiled-UDF inner-loop operations (scan/DP cells)
    index_fetches: int = 0  # random record fetches through an index
    broadcast_records: int = 0  # probe-record deliveries (record x node)
    state_cache_hits: int = 0  # cross-batch build-state reuses
    state_cache_reused_records: int = 0  # records inside reused state
    memo_hits: int = 0  # per-key enrichment-memo reuses
    memo_reused_records: int = 0  # records inside reused memo results
    scale: float = 1.0  # reference work scale (not a counter)

    _COUNTERS = (
        "records_scanned",
        "hash_builds",
        "hash_probes",
        "btree_probes",
        "rtree_nodes_visited",
        "nlj_pairs",
        "edit_distance_cells",
        "spatial_tests",
        "sort_items",
        "group_items",
        "penalized_reads",
        "java_ops",
        "index_fetches",
        "broadcast_records",
        "state_cache_hits",
        "state_cache_reused_records",
        "memo_hits",
        "memo_reused_records",
    )
    #: counters proportional to reference-data cardinality
    _SCALED = frozenset(
        {
            "records_scanned",
            "hash_builds",
            "nlj_pairs",
            "edit_distance_cells",
            "spatial_tests",
            "penalized_reads",
            "java_ops",
            "index_fetches",
            "state_cache_reused_records",
            "memo_reused_records",
        }
    )

    def reset(self) -> None:
        for name in self._COUNTERS:
            setattr(self, name, 0)

    def absorb(self, other: "WorkMeter") -> None:
        """Add ``other``'s counts into this meter.

        Counters are plain integer sums, so merging a scratch meter that
        accumulated a whole batch is exactly equivalent to charging the
        same work record-at-a-time (``charge`` applies scaling at
        conversion time, not at count time).
        """
        for name in self._COUNTERS:
            setattr(self, name, getattr(self, name) + getattr(other, name))

    def charge(self, cost: CostModel) -> float:
        """Convert counted work to simulated seconds."""
        import math

        s = self.scale

        def scaled(name: str) -> float:
            value = getattr(self, name)
            return value * s if name in self._SCALED else value

        sort_items = scaled("sort_items")
        sort_cost = 0.0
        if sort_items > 1:
            sort_cost = sort_items * math.log2(sort_items) * cost.sort_per_record_log
        elif sort_items == 1:
            sort_cost = cost.sort_per_record_log
        return (
            scaled("records_scanned") * cost.scan_per_record
            + scaled("hash_builds") * cost.hash_build_per_record
            + scaled("hash_probes") * cost.hash_probe_per_record
            + scaled("btree_probes") * cost.btree_probe
            + scaled("rtree_nodes_visited") * cost.rtree_probe_per_node
            + scaled("nlj_pairs") * cost.nlj_per_pair
            + scaled("edit_distance_cells") * cost.edit_distance_per_cell
            + scaled("spatial_tests") * cost.spatial_test_per_pair
            + sort_cost
            + scaled("group_items") * cost.group_per_record
            + scaled("java_ops") * cost.java_op_cost
            + scaled("index_fetches") * cost.btree_probe
            + scaled("broadcast_records") * cost.inlj_broadcast_per_record
            + scaled("state_cache_hits") * cost.state_cache_hit
            + scaled("state_cache_reused_records")
            * cost.state_cache_reuse_per_record
            + scaled("memo_hits") * cost.memo_hit
            + scaled("memo_reused_records") * cost.memo_reuse_per_record
            + scaled("penalized_reads")
            * cost.lsm_component_read
            * (cost.lsm_active_penalty - 1.0)
        )
