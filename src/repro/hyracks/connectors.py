"""Connectors: routing strategies between operator partitions.

A connector takes frames produced by one operator partition and routes
records to the consumer's partitions.  Cross-node hops charge transfer cost
to the producing node (the sending CPU does the serialization work).
"""

from __future__ import annotations

from typing import Callable, List

from .frame import DEFAULT_FRAME_CAPACITY, Frame


class RoutingStrategy:
    """Decides, per record, which consumer partition(s) receive it."""

    def route(self, record: dict, producer_partition: int, fanout: int) -> List[int]:
        raise NotImplementedError

    def describe(self) -> str:
        return type(self).__name__


class OneToOne(RoutingStrategy):
    """Partition i feeds consumer partition i (pipelining, no shuffle)."""

    def route(self, record, producer_partition, fanout):
        return [producer_partition % fanout]


class RoundRobin(RoutingStrategy):
    """Distribute records evenly — the intake job's partitioner (§6.2).

    Each producer partition keeps its own rotation cursor so the global
    distribution stays within ±1 record per consumer.
    """

    def __init__(self):
        self._cursors = {}

    def route(self, record, producer_partition, fanout):
        cursor = self._cursors.get(producer_partition, producer_partition)
        self._cursors[producer_partition] = (cursor + 1) % fanout
        return [cursor % fanout]


class HashPartition(RoutingStrategy):
    """Route by a hash of a key extracted from the record (storage §6.2)."""

    def __init__(self, key_fn: Callable[[dict], object]):
        self.key_fn = key_fn

    def route(self, record, producer_partition, fanout):
        from ..storage.dataset import hash_partition

        return [hash_partition(self.key_fn(record), fanout)]


class Broadcast(RoutingStrategy):
    """Replicate every record to all consumer partitions.

    Used by index-nested-loop joins that must probe every node's local
    index partition (the Nearby Monuments limitation in §7.4.2).
    """

    def route(self, record, producer_partition, fanout):
        return list(range(fanout))


class ConnectorRuntime:
    """Per-edge runtime: buffers per consumer partition, flushes as frames."""

    def __init__(
        self,
        strategy: RoutingStrategy,
        consumers,  # list of FrameWriter, one per consumer partition
        producer_nodes: List[int],
        consumer_nodes: List[int],
        charge: Callable[[int, float], None],  # (node, seconds) -> None
        transfer_cost: float,
        frame_capacity: int = DEFAULT_FRAME_CAPACITY,
    ):
        self.strategy = strategy
        self.consumers = consumers
        self.producer_nodes = producer_nodes
        self.consumer_nodes = consumer_nodes
        self.charge = charge
        self.transfer_cost = transfer_cost
        self.frame_capacity = frame_capacity
        self._buffers = [[] for _ in consumers]
        self._open_count = 0

    def writer_for_producer(self, producer_partition: int) -> "_ConnectorWriter":
        return _ConnectorWriter(self, producer_partition)

    # Internal: called by _ConnectorWriter ---------------------------------

    def _producer_opened(self) -> None:
        if self._open_count == 0:
            for consumer in self.consumers:
                consumer.open()
        self._open_count += 1

    def _producer_closed(self) -> None:
        self._open_count -= 1
        if self._open_count == 0:
            for idx in range(len(self.consumers)):
                self._flush(idx)
            for consumer in self.consumers:
                consumer.close()

    def _push(self, record: dict, producer_partition: int) -> None:
        targets = self.strategy.route(record, producer_partition, len(self.consumers))
        producer_node = self.producer_nodes[producer_partition]
        for target in targets:
            if self.consumer_nodes[target] != producer_node:
                self.charge(producer_node, self.transfer_cost)
            self._buffers[target].append(record)
            if len(self._buffers[target]) >= self.frame_capacity:
                self._flush(target)

    def _flush(self, target: int) -> None:
        if self._buffers[target]:
            frame = Frame(self._buffers[target])
            self._buffers[target] = []
            self.consumers[target].next_frame(frame)


class _ConnectorWriter:
    """The FrameWriter a producer partition pushes into."""

    def __init__(self, runtime: ConnectorRuntime, producer_partition: int):
        self.runtime = runtime
        self.producer_partition = producer_partition

    def open(self) -> None:
        self.runtime._producer_opened()

    def next_frame(self, frame: Frame) -> None:
        for record in frame:
            self.runtime._push(record, self.producer_partition)

    def close(self) -> None:
        self.runtime._producer_closed()

    def fail(self) -> None:
        self.close()


class FanOutWriter:
    """Duplicates one producer's output to several downstream writers."""

    def __init__(self, writers):
        self.writers = list(writers)

    def open(self) -> None:
        for writer in self.writers:
            writer.open()

    def next_frame(self, frame: Frame) -> None:
        for writer in self.writers:
            writer.next_frame(frame)

    def close(self) -> None:
        for writer in self.writers:
            writer.close()

    def fail(self) -> None:
        for writer in self.writers:
            writer.fail()
