"""Hyracks substrate: frames, job DAGs, operators, connectors, executor."""

from .connectors import Broadcast, HashPartition, OneToOne, RoundRobin
from .cost import DEFAULT_COST_MODEL, CostModel, WorkMeter
from .executor import JobResult, LocalJobRunner
from .frame import DEFAULT_FRAME_CAPACITY, Frame, FrameWriter, frames_of
from .job import (
    JobSpecification,
    Operator,
    OperatorContext,
    OperatorDescriptor,
    SourceOperator,
)
from .partition_holder import (
    ActivePartitionHolder,
    PartitionHolderManager,
    PassivePartitionHolder,
)

__all__ = [
    "ActivePartitionHolder",
    "Broadcast",
    "CostModel",
    "DEFAULT_COST_MODEL",
    "DEFAULT_FRAME_CAPACITY",
    "Frame",
    "FrameWriter",
    "HashPartition",
    "JobResult",
    "JobSpecification",
    "LocalJobRunner",
    "OneToOne",
    "Operator",
    "OperatorContext",
    "OperatorDescriptor",
    "PartitionHolderManager",
    "PassivePartitionHolder",
    "RoundRobin",
    "SourceOperator",
    "WorkMeter",
    "frames_of",
]
