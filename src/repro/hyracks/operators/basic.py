"""Record-at-a-time operators: filter, assign, project, limit, parse."""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional

from ...adm.parser import parse_json
from ...errors import AdmParseError
from ..frame import Frame
from ..job import Operator, OperatorContext


class FilterOperator(Operator):
    """Keep records satisfying a predicate (the SELECT operator)."""

    def __init__(self, ctx: OperatorContext, predicate: Callable[[dict], bool]):
        super().__init__(ctx)
        self.predicate = predicate

    def next_frame(self, frame: Frame) -> None:
        self.ctx.charge(self.ctx.cost.filter_per_record * len(frame))
        kept = [r for r in frame if self.predicate(r)]
        if kept:
            self.emit(Frame(kept))


class AssignOperator(Operator):
    """Map each record through a function (ASSIGN / projection with exprs).

    ``fn`` may return a record, a list of records (for unnesting), or None
    to drop the record.
    """

    def __init__(
        self,
        ctx: OperatorContext,
        fn: Callable[[dict], object],
        per_record_cost: Optional[float] = None,
    ):
        super().__init__(ctx)
        self.fn = fn
        self.per_record_cost = per_record_cost

    def next_frame(self, frame: Frame) -> None:
        cost = (
            self.per_record_cost
            if self.per_record_cost is not None
            else self.ctx.cost.move_per_record
        )
        self.ctx.charge(cost * len(frame))
        out: List[dict] = []
        for record in frame:
            produced = self.fn(record)
            if produced is None:
                continue
            if isinstance(produced, list):
                out.extend(produced)
            else:
                out.append(produced)
        if out:
            self.emit(Frame(out))


class ProjectOperator(Operator):
    """Keep only the named top-level fields of each record."""

    def __init__(self, ctx: OperatorContext, fields: Iterable[str]):
        super().__init__(ctx)
        self.fields = list(fields)

    def next_frame(self, frame: Frame) -> None:
        self.ctx.charge(self.ctx.cost.move_per_record * len(frame))
        out = [{f: r[f] for f in self.fields if f in r} for r in frame]
        self.emit(Frame(out))


class LimitOperator(Operator):
    """Emit at most N records across all partitions of this operator.

    The shared counter lives on the job runtime so partitions coordinate,
    mirroring Hyracks' global limit enforcement.
    """

    def __init__(self, ctx: OperatorContext, limit: int):
        super().__init__(ctx)
        self.limit = limit
        self._counter_key = ("limit", id(self))

    def next_frame(self, frame: Frame) -> None:
        shared = self.ctx.runtime.shared_state
        key = ("limit_count", self.ctx.runtime.current_job_name, self.limit)
        taken = shared.get(key, 0)
        remaining = self.limit - taken
        if remaining <= 0:
            return
        out = frame.records[:remaining]
        shared[key] = taken + len(out)
        self.ctx.charge(self.ctx.cost.move_per_record * len(out))
        if out:
            self.emit(Frame(out))


_ENVELOPE_KEYS = frozenset({"raw", "seq", "partition"})


class ParseOperator(Operator):
    """Turn raw ``{"raw": <json text>, "seq": <n>}`` envelopes into typed
    ADM records.

    This is the feed *parser*: in the old framework it sits right behind
    the adapter on the intake node; in the new framework it runs inside the
    computing job on every node (Fig. 23's Collector + Parser).

    ``soft_errors`` (a :class:`~repro.ingestion.policy.SoftErrorHandler`)
    governs malformed records: without one, an
    :class:`~repro.errors.AdmParseError` — stamped with the envelope's
    ``seq`` provenance — aborts the job, matching the seed behavior.
    """

    def __init__(self, ctx: OperatorContext, datatype=None, soft_errors=None):
        super().__init__(ctx)
        self.datatype = datatype
        self.soft_errors = soft_errors

    def next_frame(self, frame: Frame) -> None:
        self.ctx.charge(self.ctx.cost.parse_per_record * len(frame))
        out: List[dict] = []
        for envelope in frame:
            if (
                isinstance(envelope, dict)
                and "raw" in envelope
                and _ENVELOPE_KEYS.issuperset(envelope)
            ):
                raw = envelope["raw"]
                seq = envelope.get("seq")
                try:
                    out.append(parse_json(raw, self.datatype))
                except AdmParseError as exc:
                    exc.seq = seq
                    exc.source = "parse"
                    if self.soft_errors is None:
                        raise
                    self.soft_errors.handle("parse", raw, exc, seq=seq)
                    continue
                if self.soft_errors is not None:
                    self.soft_errors.note_success()
            else:  # already parsed (in-memory short-circuit)
                out.append(envelope)
        self.emit(Frame(out))


class UnionAllOperator(Operator):
    """Pass-through that merges several inbound edges into one stream."""

    def next_frame(self, frame: Frame) -> None:
        self.ctx.charge(self.ctx.cost.move_per_record * len(frame))
        self.emit(frame)
