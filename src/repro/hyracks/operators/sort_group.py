"""Blocking operators: sort and hash group-by."""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Tuple

from ..frame import Frame, frames_of
from ..job import Operator, OperatorContext


class SortOperator(Operator):
    """Buffer, sort on close, emit (the SortGroupBy local step of Fig. 2)."""

    def __init__(
        self,
        ctx: OperatorContext,
        key_fn: Callable[[dict], object],
        reverse: bool = False,
    ):
        super().__init__(ctx)
        self.key_fn = key_fn
        self.reverse = reverse
        self._buffer: List[dict] = []

    def next_frame(self, frame: Frame) -> None:
        self._buffer.extend(frame.records)

    def close(self) -> None:
        n = len(self._buffer)
        if n > 1:
            self.ctx.charge(self.ctx.cost.sort_per_record_log * n * math.log2(n))
        self._buffer.sort(key=self.key_fn, reverse=self.reverse)
        for frame in frames_of(self._buffer):
            self.emit(frame)
        self._buffer = []
        super().close()


class Aggregator:
    """One aggregate column: ``out[name] = final(reduce(step, records))``."""

    def __init__(self, name: str, init, step, final=None):
        self.name = name
        self.init = init
        self.step = step
        self.final = final or (lambda acc: acc)


def count_aggregator(name: str = "count") -> Aggregator:
    return Aggregator(name, lambda: 0, lambda acc, _record: acc + 1)


def sum_aggregator(name: str, value_fn: Callable[[dict], float]) -> Aggregator:
    def step(acc, record):
        value = value_fn(record)
        return acc if value is None else acc + value

    return Aggregator(name, lambda: 0, step)


def collect_aggregator(name: str, value_fn: Callable[[dict], object]) -> Aggregator:
    return Aggregator(
        name, lambda: [], lambda acc, record: acc + [value_fn(record)]
    )


class HashGroupByOperator(Operator):
    """Hash-based grouping with pluggable aggregators.

    Emits one record per group: the group key fields plus one field per
    aggregator.  ``key_fn`` returns a tuple of key values; ``key_names``
    names them in the output record.
    """

    def __init__(
        self,
        ctx: OperatorContext,
        key_fn: Callable[[dict], Tuple],
        key_names: List[str],
        aggregators: List[Aggregator],
    ):
        super().__init__(ctx)
        self.key_fn = key_fn
        self.key_names = key_names
        self.aggregators = aggregators
        self._groups: Dict[Tuple, List] = {}

    def next_frame(self, frame: Frame) -> None:
        self.ctx.charge(self.ctx.cost.group_per_record * len(frame))
        for record in frame:
            key = self.key_fn(record)
            accs = self._groups.get(key)
            if accs is None:
                accs = [agg.init() for agg in self.aggregators]
                self._groups[key] = accs
            for i, agg in enumerate(self.aggregators):
                accs[i] = agg.step(accs[i], record)

    def close(self) -> None:
        out: List[dict] = []
        for key, accs in self._groups.items():
            record = dict(zip(self.key_names, key))
            for agg, acc in zip(self.aggregators, accs):
                record[agg.name] = agg.final(acc)
            out.append(record)
        for frame in frames_of(out):
            self.emit(frame)
        self._groups = {}
        super().close()
