"""Operator library for the Hyracks runtime."""

from .basic import (
    AssignOperator,
    FilterOperator,
    LimitOperator,
    ParseOperator,
    ProjectOperator,
    UnionAllOperator,
)
from .joins import (
    HashJoinOperator,
    IndexNestedLoopJoinOperator,
    NestedLoopJoinOperator,
)
from .sinks import CallbackSink, CollectSink, DatasetWriteSink, NullSink
from .sort_group import (
    Aggregator,
    HashGroupByOperator,
    SortOperator,
    collect_aggregator,
    count_aggregator,
    sum_aggregator,
)
from .sources import CallbackSource, DatasetScanSource, ListSource

__all__ = [
    "Aggregator",
    "AssignOperator",
    "CallbackSink",
    "CallbackSource",
    "CollectSink",
    "DatasetScanSource",
    "DatasetWriteSink",
    "FilterOperator",
    "HashGroupByOperator",
    "HashJoinOperator",
    "IndexNestedLoopJoinOperator",
    "LimitOperator",
    "ListSource",
    "NestedLoopJoinOperator",
    "NullSink",
    "ParseOperator",
    "ProjectOperator",
    "SortOperator",
    "UnionAllOperator",
    "collect_aggregator",
    "count_aggregator",
    "sum_aggregator",
]
