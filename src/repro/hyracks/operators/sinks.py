"""Sink operators: where records leave a job."""

from __future__ import annotations

from typing import Callable, List, Optional

from ..frame import Frame
from ..job import Operator, OperatorContext


class CollectSink(Operator):
    """Append every record to a shared result list (the Result Writer)."""

    def __init__(self, ctx: OperatorContext, result: List[dict]):
        super().__init__(ctx)
        self.result = result

    def next_frame(self, frame: Frame) -> None:
        self.ctx.charge(self.ctx.cost.move_per_record * len(frame))
        self.result.extend(frame.records)


class DatasetWriteSink(Operator):
    """Write records into a stored dataset partition (the Storage Partition).

    The executor routes records here with a hash-partition connector keyed
    on the primary key, so this sink writes only keys it owns; it charges
    LSM write cost per record plus one log-force per received frame (the
    group-commit the paper says insert jobs must wait for).
    """

    def __init__(
        self,
        ctx: OperatorContext,
        dataset,
        mode: str = "upsert",
        on_record: Optional[Callable[[dict], None]] = None,
    ):
        super().__init__(ctx)
        if mode not in ("insert", "upsert"):
            raise ValueError(f"unknown write mode: {mode!r}")
        self.dataset = dataset
        self.mode = mode
        self.on_record = on_record
        self.written = 0

    def next_frame(self, frame: Frame) -> None:
        cost = self.ctx.cost
        self.ctx.charge(cost.store_per_record * len(frame) + cost.log_flush_per_batch)
        write = self.dataset.insert if self.mode == "insert" else self.dataset.upsert
        for record in frame:
            write(record)
            self.written += 1
            if self.on_record is not None:
                self.on_record(record)


class NullSink(Operator):
    """Discard all input (used when only side effects matter)."""

    def __init__(self, ctx: OperatorContext):
        super().__init__(ctx)
        self.seen = 0

    def next_frame(self, frame: Frame) -> None:
        self.seen += len(frame)


class CallbackSink(Operator):
    """Hand each produced frame to a callback (feeds partition holders)."""

    def __init__(self, ctx: OperatorContext, callback: Callable[[int, Frame], None]):
        super().__init__(ctx)
        self.callback = callback

    def next_frame(self, frame: Frame) -> None:
        self.ctx.charge(self.ctx.cost.move_per_record * len(frame))
        self.callback(self.ctx.partition, frame)
