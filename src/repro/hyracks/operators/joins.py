"""Join operators: hash join (with spill detection), index NLJ, naive NLJ.

The build side of every join is a *stored dataset provider* — a callable
returning the local build records — because in the paper's enrichment
pipelines the build side is always reference data.  The probe side streams
through the operator.  This mirrors Section 4.3.4's three scenarios:

* small build side  -> in-memory hash table, probe streams through;
* large build side  -> the hash join *spills*; if the probe is an unbounded
  feed the join cannot complete (``StreamingJoinError``);
* an index on the build side -> index nested-loop join, probing live data.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional

from ...errors import StreamingJoinError
from ..frame import Frame
from ..job import Operator, OperatorContext


class HashJoinOperator(Operator):
    """Build-and-probe hash join against a dataset provider.

    ``build_provider(partition)`` yields the build records visible to this
    partition; ``build_key_fn``/``probe_key_fn`` extract equi-join keys;
    ``combine_fn(probe_record, matches) -> output record(s)`` shapes the
    result (enrichment keeps the probe record and attaches match data).

    ``memory_budget_records`` models the in-memory hash table capacity:
    exceeding it spills the overflow partition.  Spilling is fine for
    bounded jobs (we process the spilled partition after the probe input
    closes) but fatal when ``unbounded_probe`` is set.
    """

    def __init__(
        self,
        ctx: OperatorContext,
        build_provider: Callable[[int], Iterable[dict]],
        build_key_fn: Callable[[dict], object],
        probe_key_fn: Callable[[dict], object],
        combine_fn: Callable[[dict, List[dict]], object],
        memory_budget_records: Optional[int] = None,
        unbounded_probe: bool = False,
        keep_unmatched_probe: bool = True,
    ):
        super().__init__(ctx)
        self.build_provider = build_provider
        self.build_key_fn = build_key_fn
        self.probe_key_fn = probe_key_fn
        self.combine_fn = combine_fn
        self.memory_budget = memory_budget_records
        self.unbounded_probe = unbounded_probe
        self.keep_unmatched_probe = keep_unmatched_probe
        self._table: Dict[object, List[dict]] = {}
        self._spilled: List[dict] = []
        self._spilled_probe: List[dict] = []
        self.spilled = False

    def open(self) -> None:
        """Build phase: scan the provider into the in-memory hash table."""
        build_count = 0
        for record in self.build_provider(self.ctx.partition):
            build_count += 1
            if self.memory_budget is not None and build_count > self.memory_budget:
                self.spilled = True
                self._spilled.append(record)
                continue
            key = self.build_key_fn(record)
            self._table.setdefault(key, []).append(record)
        self.ctx.charge(
            self.ctx.cost.scan_per_record * build_count
            + self.ctx.cost.hash_build_per_record * build_count
        )
        if self.spilled and self.unbounded_probe:
            raise StreamingJoinError(
                "hash join build side exceeds memory and the probe side is an "
                "unbounded feed: spilled partitions can never be re-joined "
                "(paper §4.3.4, case 2)"
            )
        super().open()

    def next_frame(self, frame: Frame) -> None:
        self.ctx.charge(self.ctx.cost.hash_probe_per_record * len(frame))
        out: List[dict] = []
        for record in frame:
            if self.spilled:
                # Probe tuples may match spilled build tuples; buffer them
                # for the post-close recursive round (bounded inputs only).
                self._spilled_probe.append(record)
            matches = self._table.get(self.probe_key_fn(record), [])
            result = self._combine(record, matches, emit_unmatched=not self.spilled)
            out.extend(result)
        if out:
            self.emit(Frame(out))

    def _combine(self, record, matches, emit_unmatched=True) -> List[dict]:
        if not matches and not self.keep_unmatched_probe:
            return []
        if not matches and self.spilled and not emit_unmatched:
            return []  # defer: the spilled round may still match it
        produced = self.combine_fn(record, matches)
        if produced is None:
            return []
        return produced if isinstance(produced, list) else [produced]

    def close(self) -> None:
        if self.spilled and self._spilled:
            # Recursive round: join buffered probe tuples against the
            # spilled build partition (extra I/O pass charged).
            spill_table: Dict[object, List[dict]] = {}
            for record in self._spilled:
                spill_table.setdefault(self.build_key_fn(record), []).append(record)
            self.ctx.charge(
                self.ctx.cost.hash_build_per_record * len(self._spilled)
                + self.ctx.cost.scan_per_record * len(self._spilled)  # re-read
                + self.ctx.cost.hash_probe_per_record * len(self._spilled_probe)
                + self.ctx.cost.scan_per_record * len(self._spilled_probe)
            )
            out: List[dict] = []
            for record in self._spilled_probe:
                key = self.probe_key_fn(record)
                matches = self._table.get(key, []) + spill_table.get(key, [])
                if matches or self.keep_unmatched_probe:
                    produced = self.combine_fn(record, matches)
                    if produced is not None:
                        out.extend(
                            produced if isinstance(produced, list) else [produced]
                        )
            if out:
                self.emit(Frame(out))
        self._table = {}
        self._spilled = []
        self._spilled_probe = []
        super().close()


class IndexNestedLoopJoinOperator(Operator):
    """Probe a live dataset index once per incoming record (§4.3.4 case 3).

    Because every probe reads current index state, this operator observes
    reference-data changes mid-batch — no intermediate state to refresh.

    ``probe_fn(dataset, record) -> iterable of matching reference records``
    encapsulates the index access (B-tree equality or R-tree spatial);
    ``combine_fn(record, matches)`` shapes the output.
    """

    def __init__(
        self,
        ctx: OperatorContext,
        dataset,
        probe_fn: Callable[[object, dict], Iterable[dict]],
        combine_fn: Callable[[dict, List[dict]], object],
    ):
        super().__init__(ctx)
        self.dataset = dataset
        self.probe_fn = probe_fn
        self.combine_fn = combine_fn

    def next_frame(self, frame: Frame) -> None:
        cost = self.ctx.cost
        out: List[dict] = []
        penalty = cost.lsm_active_penalty if self.dataset.update_activity else 1.0
        for record in frame:
            matches = list(self.probe_fn(self.dataset, record))
            self.ctx.charge(
                (cost.btree_probe + cost.scan_per_record * len(matches)) * penalty
            )
            produced = self.combine_fn(record, matches)
            if produced is None:
                continue
            out.extend(produced if isinstance(produced, list) else [produced])
        if out:
            self.emit(Frame(out))


class NestedLoopJoinOperator(Operator):
    """Naive nested-loop join against a provider (the no-index hint path)."""

    def __init__(
        self,
        ctx: OperatorContext,
        build_provider: Callable[[int], Iterable[dict]],
        predicate: Callable[[dict, dict], bool],
        combine_fn: Callable[[dict, List[dict]], object],
    ):
        super().__init__(ctx)
        self.build_provider = build_provider
        self.predicate = predicate
        self.combine_fn = combine_fn
        self._build: Optional[List[dict]] = None

    def open(self) -> None:
        self._build = list(self.build_provider(self.ctx.partition))
        self.ctx.charge(self.ctx.cost.scan_per_record * len(self._build))
        super().open()

    def next_frame(self, frame: Frame) -> None:
        cost = self.ctx.cost
        out: List[dict] = []
        for record in frame:
            self.ctx.charge(cost.nlj_per_pair * len(self._build))
            matches = [b for b in self._build if self.predicate(record, b)]
            produced = self.combine_fn(record, matches)
            if produced is None:
                continue
            out.extend(produced if isinstance(produced, list) else [produced])
        if out:
            self.emit(Frame(out))

    def close(self) -> None:
        self._build = None
        super().close()
