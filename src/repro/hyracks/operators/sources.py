"""Source operators: where records enter a job."""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional

from ..frame import DEFAULT_FRAME_CAPACITY, frames_of
from ..job import OperatorContext, SourceOperator


class ListSource(SourceOperator):
    """Emit a constant collection of records (the ``TweetsBatch`` of Fig. 10).

    When the descriptor has several partitions, each instance emits the
    slice of records assigned to its partition (round-robin by index),
    unless ``partition_lists`` pre-assigns explicit per-partition lists.
    """

    def __init__(
        self,
        ctx: OperatorContext,
        records: Iterable[dict] = (),
        partition_lists: Optional[List[List[dict]]] = None,
        per_record_cost: float = 0.0,
    ):
        super().__init__(ctx)
        if partition_lists is not None:
            self._records = list(partition_lists[ctx.partition])
        else:
            all_records = list(records)
            self._records = all_records[ctx.partition :: ctx.num_partitions]
        self.per_record_cost = per_record_cost

    def run(self) -> None:
        if self.per_record_cost:
            self.ctx.charge(self.per_record_cost * len(self._records))
        for frame in frames_of(self._records, DEFAULT_FRAME_CAPACITY):
            self.emit(frame)


class DatasetScanSource(SourceOperator):
    """Scan one partition of a stored dataset (Fig. 2's Scanner)."""

    def __init__(self, ctx: OperatorContext, dataset):
        super().__init__(ctx)
        self.dataset = dataset

    def run(self) -> None:
        if self.ctx.partition >= self.dataset.num_partitions:
            return  # more scanners than storage partitions: nothing local
        records = list(self.dataset.scan_partition(self.ctx.partition))
        self.ctx.charge(self.ctx.cost.scan_per_record * len(records))
        for frame in frames_of(records):
            self.emit(frame)


class CallbackSource(SourceOperator):
    """Emit records produced by a callable ``fn(partition) -> iterable``."""

    def __init__(
        self,
        ctx: OperatorContext,
        fn: Callable[[int], Iterable[dict]],
        per_record_cost: float = 0.0,
    ):
        super().__init__(ctx)
        self.fn = fn
        self.per_record_cost = per_record_cost

    def run(self) -> None:
        count = 0
        for frame in frames_of(self.fn(self.ctx.partition)):
            count += len(frame)
            self.emit(frame)
        if self.per_record_cost:
            self.ctx.charge(self.per_record_cost * count)
