"""The job executor: runs a job specification on a simulated cluster.

Operator logic executes for real, in-process; simulated time is charged to
the node each partition is placed on.  A job's makespan is::

    startup(num_nodes, predeployed) + max over nodes of busy-seconds

which captures the two effects the paper's evaluation revolves around:
per-invocation overhead growing with cluster size, and work shrinking with
parallelism.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from ..runtime.clock import Clock

from ..errors import JobSpecificationError
from .connectors import ConnectorRuntime, FanOutWriter
from .cost import DEFAULT_COST_MODEL, CostModel
from .frame import Frame, FrameWriter
from .job import JobSpecification, OperatorContext, OperatorDescriptor, SourceOperator


@dataclass
class JobResult:
    """Outcome of one job execution."""

    job_name: str
    makespan_seconds: float
    node_busy_seconds: Dict[int, float]
    startup_seconds: float
    records_out: int = 0
    per_operator_busy: Dict[str, float] = field(default_factory=dict)
    #: simulated timestamps on the cluster clock (equal when no clock is wired)
    sim_started_at: float = 0.0
    sim_finished_at: float = 0.0

    @property
    def critical_node_seconds(self) -> float:
        return max(self.node_busy_seconds.values()) if self.node_busy_seconds else 0.0


class _MergingWriter(FrameWriter):
    """Collapses N inbound edges into one open/close pair for the consumer."""

    def __init__(self, target: FrameWriter, expected: int):
        self.target = target
        self.expected = expected
        self._opened = 0
        self._closed = 0

    def open(self) -> None:
        self._opened += 1
        if self._opened == 1:
            self.target.open()

    def next_frame(self, frame: Frame) -> None:
        self.target.next_frame(frame)

    def close(self) -> None:
        self._closed += 1
        if self._closed == self.expected:
            self.target.close()

    def fail(self) -> None:
        self.target.fail()


class LocalJobRunner:
    """Executes job specifications against a cluster of ``num_nodes``.

    One runner is shared across the jobs of a feed so connectors and
    operators can coordinate through ``shared_state``.
    """

    def __init__(
        self,
        num_nodes: int,
        cost_model: Optional[CostModel] = None,
        clock: Optional["Clock"] = None,
    ):
        if num_nodes < 1:
            raise ValueError("num_nodes must be >= 1")
        self.num_nodes = num_nodes
        self.cost_model = cost_model or DEFAULT_COST_MODEL
        self.clock = clock  # cluster clock; stamps JobResult sim timestamps
        self.shared_state: Dict[object, object] = {}
        self.current_job_name = ""
        self.jobs_executed = 0

    # ------------------------------------------------------------------ place

    def node_of(self, op: OperatorDescriptor, partition: int) -> int:
        if op.nodes is not None:
            return op.nodes[partition]
        return partition % self.num_nodes

    # ---------------------------------------------------------------- execute

    def execute(
        self,
        spec: JobSpecification,
        predeployed: bool = False,
        extra_node_busy: Optional[Dict[int, float]] = None,
    ) -> JobResult:
        """Run a job to completion and return its result.

        ``extra_node_busy`` lets callers fold pre-charged work (e.g. a
        partition holder hand-off) into the makespan computation.
        """
        spec.validate()
        self.current_job_name = spec.name
        self.jobs_executed += 1

        # Instantiate every operator partition with its context.
        instances: Dict[int, List] = {}
        contexts: Dict[int, List[OperatorContext]] = {}
        for op in spec.operators:
            instances[op.op_id] = []
            contexts[op.op_id] = []
            for p in range(op.partitions):
                ctx = OperatorContext(p, op.partitions, self.node_of(op, p), self)
                contexts[op.op_id].append(ctx)
                instances[op.op_id].append(op.factory(ctx))

        node_busy: Dict[int, float] = {n: 0.0 for n in range(self.num_nodes)}

        def charge_node(node: int, seconds: float) -> None:
            node_busy[node] += seconds

        # Wire connectors.  Consumers with multiple inbound edges get a
        # merging writer so open/close pair up; producers with multiple
        # outbound edges get a fan-out writer.
        inbound_counts = {op.op_id: len(spec.inbound(op)) for op in spec.operators}
        consumer_targets: Dict[int, List[FrameWriter]] = {}
        for op in spec.operators:
            expected = inbound_counts[op.op_id]
            if expected > 1:
                consumer_targets[op.op_id] = [
                    _MergingWriter(inst, expected) for inst in instances[op.op_id]
                ]
            else:
                consumer_targets[op.op_id] = list(instances[op.op_id])

        producer_writers: Dict[int, List[List[FrameWriter]]] = {
            op.op_id: [[] for _ in range(op.partitions)] for op in spec.operators
        }
        for conn in spec.connectors:
            runtime = ConnectorRuntime(
                strategy=conn.strategy,
                consumers=consumer_targets[conn.consumer.op_id],
                producer_nodes=[
                    self.node_of(conn.producer, p)
                    for p in range(conn.producer.partitions)
                ],
                consumer_nodes=[
                    self.node_of(conn.consumer, p)
                    for p in range(conn.consumer.partitions)
                ],
                charge=charge_node,
                transfer_cost=self.cost_model.transfer_per_record,
            )
            for p in range(conn.producer.partitions):
                producer_writers[conn.producer.op_id][p].append(
                    runtime.writer_for_producer(p)
                )

        for op in spec.operators:
            for p, instance in enumerate(instances[op.op_id]):
                writers = producer_writers[op.op_id][p]
                if len(writers) == 1:
                    instance.set_output(writers[0])
                elif len(writers) > 1:
                    instance.set_output(FanOutWriter(writers))

        # Drive the sources in topological order; frames propagate
        # synchronously through the wired writers.
        sources = [op for op in spec.topological_order() if not spec.inbound(op)]
        for op in sources:
            for instance in instances[op.op_id]:
                if not isinstance(instance, SourceOperator):
                    raise JobSpecificationError(
                        f"operator {op.name} has no inputs but is not a source"
                    )
        # Open every source before running any, and close every source only
        # after all have run: connectors count producer opens/closes, so
        # blocking consumers (sort, group-by) must see one open/close pair.
        for op in sources:
            for instance in instances[op.op_id]:
                instance.open()
        for op in sources:
            for instance in instances[op.op_id]:
                instance.run()
        for op in sources:
            for instance in instances[op.op_id]:
                instance.close()

        # Aggregate busy time per node and per operator.
        per_operator_busy: Dict[str, float] = {}
        records_out = 0
        for op in spec.operators:
            op_busy = 0.0
            for ctx in contexts[op.op_id]:
                node_busy[ctx.node] += ctx.busy_seconds
                op_busy += ctx.busy_seconds
            per_operator_busy[op.name] = op_busy
            for instance in instances[op.op_id]:
                records_out += getattr(instance, "written", 0)

        if extra_node_busy:
            for node, seconds in extra_node_busy.items():
                node_busy[node] = node_busy.get(node, 0.0) + seconds

        startup = self.cost_model.job_startup(self.num_nodes, predeployed)
        makespan = (
            startup
            + max(node_busy.values())
            + self.cost_model.job_teardown(self.num_nodes)
        )
        sim_now = self.clock.now if self.clock is not None else 0.0
        return JobResult(
            job_name=spec.name,
            makespan_seconds=makespan,
            node_busy_seconds=node_busy,
            startup_seconds=startup,
            records_out=records_out,
            per_operator_busy=per_operator_busy,
            sim_started_at=sim_now,
            sim_finished_at=sim_now + makespan,
        )
