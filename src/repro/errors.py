"""Exception hierarchy for the IDEA reproduction.

Every subsystem raises exceptions derived from :class:`ReproError` so callers
can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class AdmError(ReproError):
    """Base class for data-model errors."""


class AdmTypeError(AdmError):
    """A value does not conform to its declared ADM datatype."""


class AdmParseError(AdmError):
    """Raw input bytes/text could not be parsed into an ADM value.

    Carries record provenance when the ingestion path knows it: ``seq`` is
    the adapter-stamped sequence number (file line for a
    :class:`~repro.ingestion.adapter.FileAdapter`), ``source`` names the
    stage or adapter that produced the offending record.  Both default to
    ``None`` for parses outside a feed.
    """

    def __init__(self, message, seq=None, source=None):
        super().__init__(message)
        self.seq = seq
        self.source = source


class StorageError(ReproError):
    """Base class for storage-layer errors."""


class DuplicateKeyError(StorageError):
    """INSERT found an existing record with the same primary key."""

    def __init__(self, key):
        super().__init__(f"duplicate primary key: {key!r}")
        self.key = key


class KeyNotFoundError(StorageError):
    """DELETE/lookup referenced a primary key that does not exist."""

    def __init__(self, key):
        super().__init__(f"primary key not found: {key!r}")
        self.key = key


class IndexError_(StorageError):
    """A secondary index is missing or cannot serve the requested probe."""


class HyracksError(ReproError):
    """Base class for runtime (job execution) errors."""


class JobSpecificationError(HyracksError):
    """A job DAG is malformed (dangling connector, cycle, arity mismatch)."""


class PartitionHolderError(HyracksError):
    """Cross-job frame exchange failed (unknown holder id, closed holder)."""


class SchedulingError(HyracksError):
    """The discrete-event runtime was driven illegally (time ran backwards,
    a process yielded a non-effect, a negative advance was requested)."""


class DeadlockError(HyracksError):
    """Every live runtime process is waiting on a signal nobody can fire."""


class InjectedCrash(HyracksError):
    """A :class:`~repro.runtime.faults.FaultPlan` crashed a runtime process.

    Thrown *into* the target process generator at the scheduled simulated
    time.  A :class:`~repro.runtime.supervisor.Supervisor` catches it and
    restarts the layer; an unsupervised process dies and the crash
    propagates out of the run.
    """

    def __init__(self, fault=None):
        super().__init__(f"injected crash: {fault!r}")
        self.fault = fault


class SqlppError(ReproError):
    """Base class for SQL++ front-end errors."""


class SqlppSyntaxError(SqlppError):
    """The query text failed to lex or parse."""

    def __init__(self, message, line=None, column=None):
        loc = f" at line {line}, column {column}" if line is not None else ""
        super().__init__(f"{message}{loc}")
        self.line = line
        self.column = column


class SqlppAnalysisError(SqlppError):
    """Semantic analysis failed (unknown dataset, unbound variable...)."""


class SqlppEvaluationError(SqlppError):
    """Runtime evaluation of an expression failed."""


class UdfError(ReproError):
    """Base class for user-defined-function errors."""


class UdfRegistrationError(UdfError):
    """A UDF could not be registered (name clash, bad arity)."""


class IngestionError(ReproError):
    """Base class for feed/ingestion errors."""


class FeedStateError(IngestionError):
    """A feed operation was issued in the wrong lifecycle state."""


class FeedFailedError(IngestionError):
    """A feed run was escalated to failure by its ingestion policy
    (soft-error escalation, circuit breaker, or exhausted supervisor
    restarts)."""


class CircuitBreakerError(FeedFailedError):
    """Too many consecutive soft errors: the per-feed breaker opened."""

    def __init__(self, feed_name, consecutive, limit, last_error=None):
        super().__init__(
            f"feed {feed_name!r}: circuit breaker opened after "
            f"{consecutive} consecutive soft error(s) (limit {limit}); "
            f"last error: {last_error}"
        )
        self.feed_name = feed_name
        self.consecutive = consecutive
        self.limit = limit
        self.last_error = last_error


class ExternalEnrichmentError(IngestionError):
    """An external enricher exhausted its retry budget and the feed's
    policy escalates external failures (``external_on_failure='fail'``).

    Transient by nature — the remote service may recover — so dead-letter
    replay classifies this family as *retryable*.
    """

    def __init__(self, feed_name, enricher, key, reason):
        super().__init__(
            f"feed {feed_name!r}: external enricher {enricher!r} failed for "
            f"key {key!r} after exhausting its retry budget ({reason})"
        )
        self.feed_name = feed_name
        self.enricher = enricher
        self.key = key
        self.reason = reason


class StreamingJoinError(IngestionError):
    """A stateful UDF cannot be evaluated with the streaming model (Model 3).

    Mirrors Section 4.3.4 of the paper: a hash join whose build side spills
    to disk expects to re-read the probe side, which is impossible when the
    probe side is an unbounded feed.
    """
