"""Workload generators: tweets, reference datasets, update streams."""

from .reference import PaperWorkload, WorkloadScale
from .tweets import TWEET_TYPE, TWEET_TYPE_FULL, TweetGenerator

__all__ = [
    "PaperWorkload",
    "TWEET_TYPE",
    "TWEET_TYPE_FULL",
    "TweetGenerator",
    "WorkloadScale",
]
