"""Generators for every reference dataset in the paper's evaluation.

Paper cardinalities (Section 7.2/7.4) and our defaults (scaled by
``reference_scale`` with floors so spatial densities stay meaningful):

===================  ==========  =================================
Dataset              Paper size  Fields
===================  ==========  =================================
SafetyRatings           500,000  country_code PK, safety_rating
ReligiousPopulations    500,000  rid PK, country_name, religion_name, population
SensitiveNamesDataset     5,000  sid PK, sensitiveName, religionName
monumentList            500,000  monument_id PK, monument_location point
ReligiousBuildings       10,000  religious_building_id PK, religion_name,
                                 building_location point, registered_believer
Facilities               50,000  facility_id PK, facility_location point,
                                 facility_type
SuspiciousNames       1,000,000  suspicious_name_id PK, suspicious_name,
                                 religion_name, threat_level
AverageIncomes           50,000  district_area_id PK, average_income
DistrictAreas               500  district_area_id PK, district_area rectangle
Persons           1,000,000,000  person_id PK, ethnicity, location point
AttackEvents              5,000  attack_record_id PK, attack_datetime,
                                 attack_location point, related_religion
SensitiveWords          (small)  wid PK, country, word
===================  ==========  =================================

The 1B-record Residents dataset is simulated at laptop scale (see
DESIGN.md's substitution table): same schema and per-district skew,
cardinality configurable.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from ..adm.schema import open_type
from ..adm.values import DateTime, Point, Rectangle
from ..storage.dataset import Dataset
from ..storage.index import IndexKind
from .tweets import TweetGenerator, _SENSITIVE_WORDS

_RELIGIONS = [f"religion_{i:02d}" for i in range(24)]
_FACILITY_TYPES = [
    "school",
    "hospital",
    "mall",
    "stadium",
    "station",
    "airport",
    "library",
    "museum",
    "park",
    "theater",
]
_ETHNICITIES = [f"ethnicity_{i:02d}" for i in range(12)]
_RATINGS = ["1", "2", "3", "4", "5"]


@dataclass
class WorkloadScale:
    """Knobs controlling generated dataset sizes."""

    reference_scale: float = 0.01  # multiplier on paper cardinalities
    persons: int = 5_000  # sampled substitute for the paper's 1B residents
    districts: int = 500  # paper size (already small)
    num_countries: int = 200
    num_names: int = 2_000
    world_size: float = 100.0
    seed: int = 7

    def sized(self, paper_size: int, floor: int = 50) -> int:
        return max(floor, int(paper_size * self.reference_scale))


@dataclass
class PaperWorkload:
    """Builds the full catalog of reference datasets plus tweet streams."""

    scale: WorkloadScale = field(default_factory=WorkloadScale)
    num_partitions: int = 6
    with_indexes: bool = True

    def __post_init__(self):
        self.tweet_generator = TweetGenerator(
            seed=self.scale.seed,
            num_countries=self.scale.num_countries,
            num_names=self.scale.num_names,
            world_size=self.scale.world_size,
        )
        self._rnd = random.Random(self.scale.seed * 31 + 1)

    # ------------------------------------------------------------ generators

    def safety_ratings(self, size: Optional[int] = None) -> Iterator[dict]:
        size = size if size is not None else self.scale.sized(500_000)
        rnd = random.Random(self.scale.seed + 101)
        for i in range(size):
            yield {
                "country_code": _spread_country(i, self.scale.num_countries),
                "safety_rating": rnd.choice(_RATINGS),
            }

    def religious_populations(self, size: Optional[int] = None) -> Iterator[dict]:
        size = size if size is not None else self.scale.sized(500_000)
        rnd = random.Random(self.scale.seed + 102)
        for i in range(size):
            yield {
                "rid": f"r{i:08d}",
                "country_name": self.tweet_generator.country(
                    rnd.randrange(self.scale.num_countries)
                ),
                "religion_name": rnd.choice(_RELIGIONS),
                "population": rnd.randrange(1_000, 10_000_000),
            }

    def sensitive_names(self, size: Optional[int] = None) -> Iterator[dict]:
        """The 5,000-suspect list probed by Fuzzy Suspects (use case 4)."""
        size = size if size is not None else self.scale.sized(5_000)
        rnd = random.Random(self.scale.seed + 103)
        for i in range(size):
            base = self.tweet_generator.person_name(rnd.randrange(self.scale.num_names))
            yield {
                "sid": i,
                "sensitiveName": _mutate_name(rnd, base),
                "religionName": rnd.choice(_RELIGIONS),
            }

    def monuments(self, size: Optional[int] = None) -> Iterator[dict]:
        size = size if size is not None else self.scale.sized(500_000)
        rnd = random.Random(self.scale.seed + 104)
        world = self.scale.world_size
        for i in range(size):
            yield {
                "monument_id": f"m{i:08d}",
                "monument_location": Point(
                    rnd.uniform(0, world), rnd.uniform(0, world)
                ),
            }

    def religious_buildings(self, size: Optional[int] = None) -> Iterator[dict]:
        size = size if size is not None else self.scale.sized(10_000)
        rnd = random.Random(self.scale.seed + 105)
        world = self.scale.world_size
        for i in range(size):
            yield {
                "religious_building_id": f"rb{i:07d}",
                "religion_name": rnd.choice(_RELIGIONS),
                "building_location": Point(
                    rnd.uniform(0, world), rnd.uniform(0, world)
                ),
                "registered_believer": rnd.randrange(10, 100_000),
            }

    def facilities(self, size: Optional[int] = None) -> Iterator[dict]:
        size = size if size is not None else self.scale.sized(50_000)
        rnd = random.Random(self.scale.seed + 106)
        world = self.scale.world_size
        for i in range(size):
            yield {
                "facility_id": f"f{i:07d}",
                "facility_location": Point(
                    rnd.uniform(0, world), rnd.uniform(0, world)
                ),
                "facility_type": rnd.choice(_FACILITY_TYPES),
            }

    def suspicious_names(self, size: Optional[int] = None) -> Iterator[dict]:
        size = size if size is not None else self.scale.sized(1_000_000)
        rnd = random.Random(self.scale.seed + 107)
        for i in range(size):
            yield {
                "suspicious_name_id": f"s{i:08d}",
                "suspicious_name": self.tweet_generator.person_name(
                    rnd.randrange(self.scale.num_names)
                ),
                "religion_name": rnd.choice(_RELIGIONS),
                "threat_level": rnd.randrange(1, 6),
            }

    def district_areas(self) -> Iterator[dict]:
        """A grid of ``scale.districts`` rectangles tiling the world."""
        count = self.scale.districts
        world = self.scale.world_size
        columns = max(1, int(math.sqrt(count)))
        rows = max(1, math.ceil(count / columns))
        width = world / columns
        height = world / rows
        produced = 0
        for row in range(rows):
            for column in range(columns):
                if produced >= count:
                    return
                yield {
                    "district_area_id": f"d{produced:05d}",
                    "district_area": Rectangle(
                        column * width,
                        row * height,
                        (column + 1) * width,
                        (row + 1) * height,
                    ),
                }
                produced += 1

    def average_incomes(self) -> Iterator[dict]:
        rnd = random.Random(self.scale.seed + 108)
        for district in self.district_areas():
            yield {
                "district_area_id": district["district_area_id"],
                "average_income": round(rnd.uniform(20_000, 200_000), 2),
            }

    def persons(self, size: Optional[int] = None) -> Iterator[dict]:
        size = size if size is not None else self.scale.persons
        rnd = random.Random(self.scale.seed + 109)
        world = self.scale.world_size
        for i in range(size):
            yield {
                "person_id": f"p{i:09d}",
                "ethnicity": rnd.choice(_ETHNICITIES),
                "location": Point(rnd.uniform(0, world), rnd.uniform(0, world)),
            }

    def attack_events(self, size: Optional[int] = None) -> Iterator[dict]:
        size = size if size is not None else self.scale.sized(5_000)
        rnd = random.Random(self.scale.seed + 110)
        world = self.scale.world_size
        start = self.tweet_generator.start_millis
        for i in range(size):
            # attacks within the ~70 days preceding the tweet stream
            offset = rnd.randrange(0, 70 * 86_400_000)
            yield {
                "attack_record_id": f"a{i:07d}",
                "attack_datetime": DateTime(start - offset),
                "attack_location": Point(rnd.uniform(0, world), rnd.uniform(0, world)),
                "related_religion": rnd.choice(_RELIGIONS),
            }

    def sensitive_words(self, size: int = 600) -> Iterator[dict]:
        rnd = random.Random(self.scale.seed + 111)
        for i in range(size):
            yield {
                "wid": i,
                "country": self.tweet_generator.country(
                    rnd.randrange(self.scale.num_countries)
                ),
                "word": rnd.choice(_SENSITIVE_WORDS),
            }

    # --------------------------------------------------------------- catalog

    _GENERATORS = {
        "SafetyRatings": ("safety_ratings", "country_code"),
        "ReligiousPopulations": ("religious_populations", "rid"),
        "SensitiveNamesDataset": ("sensitive_names", "sid"),
        "monumentList": ("monuments", "monument_id"),
        "ReligiousBuildings": ("religious_buildings", "religious_building_id"),
        "Facilities": ("facilities", "facility_id"),
        "SuspiciousNames": ("suspicious_names", "suspicious_name_id"),
        "DistrictAreas": ("district_areas", "district_area_id"),
        "AverageIncomes": ("average_incomes", "district_area_id"),
        "Persons": ("persons", "person_id"),
        "AttackEvents": ("attack_events", "attack_record_id"),
        "SensitiveWords": ("sensitive_words", "wid"),
    }

    _SPATIAL_INDEXES = {
        "monumentList": "monument_location",
        "ReligiousBuildings": "building_location",
        "Facilities": "facility_location",
        "DistrictAreas": "district_area",
        "Persons": "location",
    }

    def build_catalog(
        self, datasets: Optional[List[str]] = None
    ) -> Dict[str, Dataset]:
        """Create and bulk-load the requested reference datasets."""
        names = datasets if datasets is not None else list(self._GENERATORS)
        catalog: Dict[str, Dataset] = {}
        for name in names:
            generator_name, pk = self._GENERATORS[name]
            datatype = open_type(f"{name}Type", **{})
            dataset = Dataset(
                name,
                datatype,
                pk,
                num_partitions=self.num_partitions,
                memtable_budget=4096,
                validate=False,
            )
            for record in getattr(self, generator_name)():
                dataset.insert(record)
            dataset.flush_all()
            if self.with_indexes and name in self._SPATIAL_INDEXES:
                dataset.create_index(
                    f"{name}_spatial", self._SPATIAL_INDEXES[name], IndexKind.RTREE
                )
            catalog[name] = dataset
        return catalog

    def enriched_tweets_dataset(self, name: str = "EnrichedTweets") -> Dataset:
        """The target dataset every feed writes into."""
        from .tweets import TWEET_TYPE

        return Dataset(
            name,
            TWEET_TYPE,
            "id",
            num_partitions=self.num_partitions,
            memtable_budget=8192,
            validate=False,
        )

    # ---------------------------------------------------------------- updates

    def update_stream(self, dataset_name: str) -> Iterator[dict]:
        """An endless stream of upsert records for one reference dataset.

        Updates overwrite existing keys with fresh values, matching the
        paper's §7.3 client that sends reference-data updates via a feed.
        """
        generator_name, _pk = self._GENERATORS[dataset_name]
        rnd = random.Random(self.scale.seed + 999)
        base = list(getattr(self, generator_name)())
        if not base:
            return
        while True:
            record = dict(rnd.choice(base))
            if "safety_rating" in record:
                record["safety_rating"] = rnd.choice(_RATINGS)
            if "population" in record:
                record["population"] = rnd.randrange(1_000, 10_000_000)
            if "threat_level" in record:
                record["threat_level"] = rnd.randrange(1, 6)
            if "registered_believer" in record:
                record["registered_believer"] = rnd.randrange(10, 100_000)
            yield record

    # ----------------------------------------------------- java UDF resources

    def java_resources(self, catalog: Dict[str, Dataset]) -> Dict[str, Dict]:
        """Resource-file providers for the Java UDF library.

        Each provider snapshots the *current* dataset contents when called,
        emulating node-local resource files regenerated from the source of
        truth: a static feed reads them once, a dynamic feed re-reads per
        batch.
        """

        def lines_of(name: str, render) -> callable:
            def provider():
                return [render(record) for record in catalog[name].scan()]

            return provider

        resources: Dict[str, Dict] = {}
        if "SafetyRatings" in catalog:
            resources["safety_rating"] = {
                "safety_ratings": lines_of(
                    "SafetyRatings",
                    lambda r: f"{r['country_code']}|{r['safety_rating']}",
                )
            }
        if "ReligiousPopulations" in catalog:
            provider = lines_of(
                "ReligiousPopulations",
                lambda r: f"{r['rid']}|{r['country_name']}|"
                f"{r['religion_name']}|{r['population']}",
            )
            resources["religious_population"] = {"religious_populations": provider}
            resources["largest_religions"] = {"religious_populations": provider}
        if "SensitiveNamesDataset" in catalog:
            resources["fuzzy_suspects"] = {
                "suspect_names": lines_of(
                    "SensitiveNamesDataset",
                    lambda r: f"{r['sensitiveName']}|{r['religionName']}",
                )
            }
        if "monumentList" in catalog:
            resources["nearby_monuments"] = {
                "monuments": lines_of(
                    "monumentList",
                    lambda r: f"{r['monument_id']}|{r['monument_location'].x}|"
                    f"{r['monument_location'].y}",
                )
            }
        if "SensitiveWords" in catalog:
            resources["keyword_safety_check"] = {
                "keyword_list": lines_of(
                    "SensitiveWords",
                    lambda r: f"{r['wid']}|{r['country']}|{r['word']}",
                )
            }
        return resources


def _spread_country(index: int, num_countries: int) -> str:
    """Unique country codes: real countries first, then synthetic fill.

    The paper's SafetyRatings has 500k rows keyed by country_code; beyond
    the tweet-country domain the remaining keys are synthetic (they model
    the dataset's bulk without changing join selectivity).
    """
    if index < num_countries:
        return f"C{index:04d}"
    return f"X{index:07d}"


def _mutate_name(rnd: random.Random, base: str) -> str:
    """Small perturbations so edit distances land around the threshold."""
    letters = "abcdefghijklmnopqrstuvwxyz"
    name = list(base)
    for _ in range(rnd.randrange(0, 4)):
        op = rnd.randrange(3)
        pos = rnd.randrange(len(name))
        if op == 0:
            name[pos] = rnd.choice(letters)
        elif op == 1 and len(name) > 3:
            name.pop(pos)
        else:
            name.insert(pos, rnd.choice(letters))
    return "".join(name)
