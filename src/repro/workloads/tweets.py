"""The synthetic tweet firehose.

The paper ingests live-like tweets of ~450 bytes each with the fields its
UDFs touch: ``id``, ``text``, ``country``, ``latitude``/``longitude``,
``created_at``, and ``user.screen_name``/``user.name``.  This generator is
deterministic under a seed and pads the text so the serialized record size
matches the paper's ~450 bytes.
"""

from __future__ import annotations

import json
import random
from typing import Iterator, List

from ..adm.schema import open_type
from ..adm.types import Datatype

TWEET_TYPE: Datatype = open_type(
    "TweetType",
    id="int64",
    text="string",
)

#: richer variant used when parse-time coercion of created_at is wanted
TWEET_TYPE_FULL: Datatype = open_type(
    "TweetTypeFull",
    id="int64",
    text="string",
    country="string",
    latitude="double",
    longitude="double",
    created_at="datetime",
)

_WORDS = (
    "the quick brown fox jumps over lazy dog while watching sunset near "
    "river mountain city lights people walking streets coffee music news "
    "weather sports game team player score win loss election travel flight"
).split()

_SENSITIVE_WORDS = ["bomb", "attack", "threat", "blast", "riot", "hostage"]


class TweetGenerator:
    """Deterministic tweet factory shared by all benchmarks.

    ``world`` is the square [0, world_size)² coordinate domain shared with
    the spatial reference datasets; countries/names index into the same
    domains the reference generators use.
    """

    def __init__(
        self,
        seed: int = 42,
        num_countries: int = 200,
        num_names: int = 2000,
        world_size: float = 100.0,
        sensitive_fraction: float = 0.05,
        target_bytes: int = 450,
        start_millis: int = 1_552_000_000_000,  # 2019-03-08T00:26:40Z
    ):
        self.seed = seed
        self.num_countries = num_countries
        self.num_names = num_names
        self.world_size = world_size
        self.sensitive_fraction = sensitive_fraction
        self.target_bytes = target_bytes
        self.start_millis = start_millis

    def country(self, index: int) -> str:
        return f"C{index % self.num_countries:04d}"

    _NAME_LETTERS = "abcdefghij"

    def person_name(self, index: int) -> str:
        """Alphabetic names: digits would vanish under removeSpecial()."""
        digits = f"{index % self.num_names:05d}"
        return "nm" + "".join(self._NAME_LETTERS[int(d)] for d in digits)

    def records(self, count: int) -> Iterator[dict]:
        """Yield ``count`` tweet records (plain dicts, created_at as text)."""
        rnd = random.Random(self.seed)
        for i in range(count):
            text_words: List[str] = [rnd.choice(_WORDS) for _ in range(18)]
            if rnd.random() < self.sensitive_fraction:
                text_words[rnd.randrange(len(text_words))] = rnd.choice(
                    _SENSITIVE_WORDS
                )
            name_index = rnd.randrange(self.num_names)
            record = {
                "id": i,
                "text": " ".join(text_words),
                "country": self.country(rnd.randrange(self.num_countries)),
                "latitude": round(rnd.uniform(0.0, self.world_size), 6),
                "longitude": round(rnd.uniform(0.0, self.world_size), 6),
                "created_at": _iso_millis(self.start_millis + i * 100),
                "user": {
                    "screen_name": _screen_name(rnd, self.person_name(name_index)),
                    "name": self.person_name(name_index),
                },
                "lang": "en",
                "retweet_count": rnd.randrange(100),
            }
            record["filler"] = "x" * max(
                0, self.target_bytes - _base_size(record)
            )
            yield record

    def raw_json(self, count: int) -> Iterator[str]:
        """Yield serialized tweets — what a feed adapter receives."""
        for record in self.records(count):
            yield json.dumps(record, separators=(",", ":"))


def _screen_name(rnd: random.Random, base: str) -> str:
    decorations = ["_", ".", "-", "!", "", "123", "_x", "7"]
    return base + rnd.choice(decorations)


def _iso_millis(epoch_millis: int) -> str:
    from ..adm.values import DateTime

    return DateTime(epoch_millis).isoformat()


def _base_size(record: dict) -> int:
    return len(json.dumps(record, separators=(",", ":")))
