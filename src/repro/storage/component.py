"""Immutable on-"disk" LSM components.

A component is a sorted run of (key, record-or-tombstone) pairs produced by
flushing a memtable or merging older components.  Lookups binary-search the
key array; range scans slice it.
"""

from __future__ import annotations

import bisect
from typing import Iterator, List, Optional, Sequence, Tuple

from .memtable import TOMBSTONE


class SortedRunComponent:
    """An immutable sorted run with binary-search point lookups."""

    _next_component_id = 0

    def __init__(self, entries: Sequence[Tuple[object, object]], level: int = 0):
        self._keys: List[object] = [k for k, _ in entries]
        self._values: List[object] = [v for _, v in entries]
        for i in range(1, len(self._keys)):
            if not self._keys[i - 1] < self._keys[i]:
                raise ValueError(
                    f"component entries must be strictly sorted by key; "
                    f"saw {self._keys[i - 1]!r} before {self._keys[i]!r}"
                )
        self.level = level
        self.component_id = SortedRunComponent._next_component_id
        SortedRunComponent._next_component_id += 1

    def __len__(self) -> int:
        return len(self._keys)

    @property
    def min_key(self):
        return self._keys[0] if self._keys else None

    @property
    def max_key(self):
        return self._keys[-1] if self._keys else None

    def get(self, key):
        """Return the record, TOMBSTONE, or None if absent."""
        idx = bisect.bisect_left(self._keys, key)
        if idx < len(self._keys) and self._keys[idx] == key:
            return self._values[idx]
        return None

    def scan(self) -> Iterator[Tuple[object, object]]:
        return zip(self._keys, self._values)

    def range_scan(
        self, low=None, high=None, include_low=True, include_high=True
    ) -> Iterator[Tuple[object, object]]:
        start = 0
        if low is not None:
            start = (
                bisect.bisect_left(self._keys, low)
                if include_low
                else bisect.bisect_right(self._keys, low)
            )
        stop = len(self._keys)
        if high is not None:
            stop = (
                bisect.bisect_right(self._keys, high)
                if include_high
                else bisect.bisect_left(self._keys, high)
            )
        for i in range(start, stop):
            yield self._keys[i], self._values[i]


def merge_components(
    components: Sequence[SortedRunComponent],
    drop_tombstones: bool,
    level: Optional[int] = None,
) -> SortedRunComponent:
    """Merge sorted runs, newest first, into a single component.

    ``components[0]`` must be the newest run: for duplicate keys the entry
    from the earliest-listed component wins.  Tombstones are dropped only
    when merging down to the bottommost level (``drop_tombstones``).
    """
    merged: dict = {}
    for comp in reversed(components):  # oldest first; newer overwrite
        for key, value in comp.scan():
            merged[key] = value
    entries = sorted(merged.items())
    if drop_tombstones:
        entries = [(k, v) for k, v in entries if v is not TOMBSTONE]
    new_level = level if level is not None else max(c.level for c in components) + 1
    return SortedRunComponent(entries, level=new_level)
