"""A B+-tree used for secondary indexes (value -> set of primary keys).

A real node-based B+-tree with configurable order: leaf nodes hold sorted
keys and posting sets, interior nodes route by separator keys, and leaves
are chained for range scans.  Supports insert, delete, point and range
probes.  The SQL++ optimizer targets this structure for equality and range
index-nested-loop joins.
"""

from __future__ import annotations

import bisect
from typing import Iterator, List, Optional, Set, Tuple


class _Node:
    __slots__ = ("keys", "children", "values", "next_leaf", "is_leaf")

    def __init__(self, is_leaf: bool):
        self.is_leaf = is_leaf
        self.keys: List[object] = []
        self.children: List[_Node] = []  # interior only
        self.values: List[Set[object]] = []  # leaf only: posting sets
        self.next_leaf: Optional[_Node] = None


class BPlusTree:
    """B+-tree mapping index keys to sets of primary keys."""

    def __init__(self, order: int = 32):
        if order < 4:
            raise ValueError("order must be >= 4")
        self.order = order
        self._root = _Node(is_leaf=True)
        self._size = 0  # number of (key, pk) postings

    def __len__(self) -> int:
        return self._size

    @property
    def height(self) -> int:
        h = 1
        node = self._root
        while not node.is_leaf:
            node = node.children[0]
            h += 1
        return h

    # ----------------------------------------------------------------- search

    def _find_leaf(self, key) -> _Node:
        node = self._root
        while not node.is_leaf:
            idx = bisect.bisect_right(node.keys, key)
            node = node.children[idx]
        return node

    def search(self, key) -> Set[object]:
        """Return the set of primary keys indexed under ``key`` (copy)."""
        leaf = self._find_leaf(key)
        idx = bisect.bisect_left(leaf.keys, key)
        if idx < len(leaf.keys) and leaf.keys[idx] == key:
            return set(leaf.values[idx])
        return set()

    def range_search(
        self, low=None, high=None, include_low=True, include_high=True
    ) -> Iterator[Tuple[object, Set[object]]]:
        """Yield (key, postings) pairs with keys in the requested range."""
        if low is not None:
            leaf = self._find_leaf(low)
            idx = bisect.bisect_left(leaf.keys, low)
        else:
            leaf = self._leftmost_leaf()
            idx = 0
        while leaf is not None:
            while idx < len(leaf.keys):
                key = leaf.keys[idx]
                if low is not None and (key < low or (not include_low and key == low)):
                    idx += 1
                    continue
                if high is not None and (
                    key > high or (not include_high and key == high)
                ):
                    return
                yield key, set(leaf.values[idx])
                idx += 1
            leaf = leaf.next_leaf
            idx = 0

    def _leftmost_leaf(self) -> _Node:
        node = self._root
        while not node.is_leaf:
            node = node.children[0]
        return node

    def keys(self) -> Iterator[object]:
        for key, _ in self.range_search():
            yield key

    # ----------------------------------------------------------------- insert

    def insert(self, key, primary_key) -> None:
        """Add a posting; duplicate (key, pk) pairs are idempotent."""
        result = self._insert_into(self._root, key, primary_key)
        if result is not None:
            sep, right = result
            new_root = _Node(is_leaf=False)
            new_root.keys = [sep]
            new_root.children = [self._root, right]
            self._root = new_root

    def _insert_into(self, node: _Node, key, primary_key):
        if node.is_leaf:
            idx = bisect.bisect_left(node.keys, key)
            if idx < len(node.keys) and node.keys[idx] == key:
                if primary_key not in node.values[idx]:
                    node.values[idx].add(primary_key)
                    self._size += 1
                return None
            node.keys.insert(idx, key)
            node.values.insert(idx, {primary_key})
            self._size += 1
            if len(node.keys) > self.order:
                return self._split_leaf(node)
            return None
        idx = bisect.bisect_right(node.keys, key)
        result = self._insert_into(node.children[idx], key, primary_key)
        if result is None:
            return None
        sep, right = result
        node.keys.insert(idx, sep)
        node.children.insert(idx + 1, right)
        if len(node.keys) > self.order:
            return self._split_interior(node)
        return None

    def _split_leaf(self, node: _Node):
        mid = len(node.keys) // 2
        right = _Node(is_leaf=True)
        right.keys = node.keys[mid:]
        right.values = node.values[mid:]
        node.keys = node.keys[:mid]
        node.values = node.values[:mid]
        right.next_leaf = node.next_leaf
        node.next_leaf = right
        return right.keys[0], right

    def _split_interior(self, node: _Node):
        mid = len(node.keys) // 2
        sep = node.keys[mid]
        right = _Node(is_leaf=False)
        right.keys = node.keys[mid + 1 :]
        right.children = node.children[mid + 1 :]
        node.keys = node.keys[:mid]
        node.children = node.children[: mid + 1]
        return sep, right

    # ----------------------------------------------------------------- delete

    def delete(self, key, primary_key) -> bool:
        """Remove one posting; returns False if it was not present.

        Underfull nodes are tolerated (lazy deletion) — keys vanish from the
        tree when their posting set empties, which keeps the structure
        correct; rebalancing is unnecessary for our read-mostly indexes.
        """
        leaf = self._find_leaf(key)
        idx = bisect.bisect_left(leaf.keys, key)
        if idx >= len(leaf.keys) or leaf.keys[idx] != key:
            return False
        postings = leaf.values[idx]
        if primary_key not in postings:
            return False
        postings.discard(primary_key)
        self._size -= 1
        if not postings:
            leaf.keys.pop(idx)
            leaf.values.pop(idx)
        return True

    def check_invariants(self) -> None:
        """Assert structural invariants (used by property tests)."""
        self._check_node(self._root, None, None, is_root=True)
        # leaf chain must be sorted globally
        prev = None
        for key in self.keys():
            if prev is not None and not prev < key:
                raise AssertionError(f"leaf chain out of order: {prev!r} !< {key!r}")
            prev = key

    def _check_node(self, node: _Node, low, high, is_root=False):
        for i in range(1, len(node.keys)):
            if not node.keys[i - 1] < node.keys[i]:
                raise AssertionError("node keys not strictly sorted")
        for key in node.keys:
            if low is not None and key < low:
                raise AssertionError("key below subtree lower bound")
            if high is not None and key > high:
                raise AssertionError("key above subtree upper bound")
        if node.is_leaf:
            if len(node.keys) != len(node.values):
                raise AssertionError("leaf keys/values length mismatch")
        else:
            if len(node.children) != len(node.keys) + 1:
                raise AssertionError("interior fanout mismatch")
            bounds = [low] + list(node.keys) + [high]
            for i, child in enumerate(node.children):
                self._check_node(child, bounds[i], bounds[i + 1])
