"""Saving and loading datasets to/from disk.

Snapshots are a metadata header plus newline-delimited JSON records using
the ADM serializer, so extended values (datetimes, points, rectangles,
circles, durations) round-trip.  Secondary indexes are rebuilt at load
time from their recorded definitions — indexes are derived state, so
persisting the trees themselves would only risk divergence.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Optional

from ..adm.parser import coerce_record, parse_json, serialize
from ..adm.schema import make_type
from ..adm.types import Datatype, FieldType, TypeTag
from ..errors import StorageError
from .dataset import Dataset
from .index import IndexKind

FORMAT_VERSION = 1

_TAG_SPECS = {
    TypeTag.INT64: "int64",
    TypeTag.DOUBLE: "double",
    TypeTag.STRING: "string",
    TypeTag.BOOLEAN: "boolean",
    TypeTag.DATETIME: "datetime",
    TypeTag.DURATION: "duration",
    TypeTag.POINT: "point",
    TypeTag.RECTANGLE: "rectangle",
    TypeTag.CIRCLE: "circle",
    TypeTag.NULL: "null",
    TypeTag.ANY: "any",
}


def _field_spec(field_type: FieldType) -> str:
    if field_type.tag is TypeTag.ARRAY and field_type.item is not None:
        spec = f"[{_field_spec(field_type.item)}]"
    else:
        spec = _TAG_SPECS.get(field_type.tag, "any")
    if field_type.optional:
        spec += "?"
    return spec


def _datatype_header(datatype: Datatype) -> Dict:
    return {
        "name": datatype.name,
        "open": datatype.is_open,
        "fields": {
            name: _field_spec(ftype) for name, ftype in datatype.fields.items()
        },
    }


def save_dataset(dataset: Dataset, path: str) -> int:
    """Write a snapshot of ``dataset`` to ``path``; returns records written.

    The snapshot holds the current committed contents (memtables included);
    write it after quiescing the feed for a consistent cut.
    """
    header = {
        "format_version": FORMAT_VERSION,
        "dataset": dataset.name,
        "primary_key": dataset.primary_key,
        "num_partitions": dataset.num_partitions,
        "datatype": _datatype_header(dataset.datatype),
        "indexes": [
            {"name": name, "field": field, "kind": kind.value}
            for name, (field, kind) in dataset._index_fields.items()
        ],
    }
    count = 0
    tmp_path = path + ".tmp"
    with open(tmp_path, "w", encoding="utf-8") as handle:
        handle.write(json.dumps(header) + "\n")
        for record in dataset.scan():
            handle.write(serialize(record) + "\n")
            count += 1
    os.replace(tmp_path, path)  # atomic publish
    return count


def load_dataset(
    path: str,
    num_partitions: Optional[int] = None,
    memtable_budget: int = 4096,
) -> Dataset:
    """Rebuild a dataset from a snapshot written by :func:`save_dataset`.

    ``num_partitions`` overrides the snapshot's partition count (records
    rehash onto the new layout); secondary indexes are recreated.
    """
    with open(path, "r", encoding="utf-8") as handle:
        header_line = handle.readline()
        if not header_line.strip():
            raise StorageError(f"{path}: empty snapshot file")
        try:
            header = json.loads(header_line)
        except json.JSONDecodeError as exc:
            raise StorageError(f"{path}: malformed snapshot header") from exc
        version = header.get("format_version")
        if version != FORMAT_VERSION:
            raise StorageError(
                f"{path}: unsupported snapshot format version {version!r}"
            )
        datatype = make_type(
            header["datatype"]["name"],
            header["datatype"]["fields"],
            open=header["datatype"]["open"],
        )
        dataset = Dataset(
            header["dataset"],
            datatype,
            header["primary_key"],
            num_partitions=num_partitions or header["num_partitions"],
            memtable_budget=memtable_budget,
            validate=False,
        )
        for line in handle:
            line = line.strip()
            if line:
                record = coerce_record(parse_json(line), datatype)
                dataset.insert(record)
    dataset.flush_all()
    for index in header.get("indexes", []):
        dataset.create_index(
            index["name"], index["field"], IndexKind(index["kind"])
        )
    return dataset
