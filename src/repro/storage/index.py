"""Secondary index management for datasets.

A :class:`SecondaryIndex` keeps a B+-tree (value indexes) or R-tree
(spatial indexes) synchronized with the primary storage of one dataset
partition.  Index maintenance happens inside the dataset's write path so
primary data and indexes can never diverge.
"""

from __future__ import annotations

import enum
from typing import Iterator, Optional, Set, Tuple

from ..adm.schema import field_path
from ..adm.values import MISSING
from ..errors import IndexError_
from .btree import BPlusTree
from .rtree import RTree


class IndexKind(enum.Enum):
    BTREE = "btree"
    RTREE = "rtree"


class SecondaryIndex:
    """One partition's secondary index over a record field."""

    def __init__(self, name: str, field: str, kind: IndexKind):
        self.name = name
        self.field = field
        self.kind = kind
        if kind is IndexKind.BTREE:
            self._btree: Optional[BPlusTree] = BPlusTree()
            self._rtree: Optional[RTree] = None
        elif kind is IndexKind.RTREE:
            self._btree = None
            self._rtree = RTree()
        else:  # pragma: no cover - exhaustive enum
            raise IndexError_(f"unknown index kind: {kind}")

    def __len__(self) -> int:
        tree = self._btree if self._btree is not None else self._rtree
        return len(tree)

    def _key_of(self, record):
        value = field_path(record, self.field)
        if value is MISSING or value is None:
            return None  # records without the field are simply not indexed
        return value

    def on_insert(self, record, primary_key) -> None:
        key = self._key_of(record)
        if key is None:
            return
        if self._btree is not None:
            self._btree.insert(key, primary_key)
        else:
            self._rtree.insert(key, primary_key)

    def on_delete(self, record, primary_key) -> None:
        key = self._key_of(record)
        if key is None:
            return
        if self._btree is not None:
            self._btree.delete(key, primary_key)
        else:
            self._rtree.delete(key, primary_key)

    def on_upsert(self, old_record, new_record, primary_key) -> None:
        if old_record is not None:
            self.on_delete(old_record, primary_key)
        self.on_insert(new_record, primary_key)

    # ----------------------------------------------------------------- probes

    def probe_equal(self, value) -> Set[object]:
        if self._btree is None:
            raise IndexError_(f"index {self.name} is not a B-tree")
        return self._btree.search(value)

    def probe_range(
        self, low=None, high=None, include_low=True, include_high=True
    ) -> Iterator[Tuple[object, Set[object]]]:
        if self._btree is None:
            raise IndexError_(f"index {self.name} is not a B-tree")
        return self._btree.range_search(low, high, include_low, include_high)

    def probe_spatial(self, query) -> Iterator[Tuple[object, object]]:
        """Yield (spatial_value, primary_key) with MBRs intersecting query."""
        if self._rtree is None:
            raise IndexError_(f"index {self.name} is not an R-tree")
        return self._rtree.search(query)

    @property
    def probe_count(self) -> int:
        if self._rtree is not None:
            return self._rtree.probes
        return 0

    @property
    def nodes_visited(self) -> int:
        """Cumulative R-tree nodes touched by searches (cost accounting)."""
        if self._rtree is not None:
            return self._rtree.nodes_visited
        return 0
