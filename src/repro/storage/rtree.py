"""An R-tree for spatial secondary indexes.

AsterixDB builds an R-tree when the user issues ``CREATE INDEX ... TYPE
RTREE``; the paper's Nearby Monuments / Suspicious Names / Worrisome Tweets
UDFs rely on it for index-nested-loop spatial joins.  This is a classic
Guttman R-tree with quadratic split, supporting insert, delete, and
search-by-query-rectangle.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

from ..adm.values import Circle, Point, Rectangle


def mbr_of(value) -> Rectangle:
    """Minimum bounding rectangle of any spatial value."""
    if isinstance(value, Point):
        return Rectangle(value.x, value.y, value.x, value.y)
    if isinstance(value, Rectangle):
        return value
    if isinstance(value, Circle):
        return value.mbr
    raise TypeError(f"not a spatial value: {value!r}")


def _union(a: Rectangle, b: Rectangle) -> Rectangle:
    return Rectangle(
        min(a.x1, b.x1), min(a.y1, b.y1), max(a.x2, b.x2), max(a.y2, b.y2)
    )


def _area(r: Rectangle) -> float:
    return (r.x2 - r.x1) * (r.y2 - r.y1)


def _enlargement(r: Rectangle, added: Rectangle) -> float:
    return _area(_union(r, added)) - _area(r)


class _Entry:
    __slots__ = ("mbr", "child", "payload")

    def __init__(self, mbr: Rectangle, child=None, payload=None):
        self.mbr = mbr
        self.child = child  # _RNode for interior entries
        self.payload = payload  # (spatial_value, primary_key) for leaves


class _RNode:
    __slots__ = ("entries", "is_leaf", "parent")

    def __init__(self, is_leaf: bool):
        self.is_leaf = is_leaf
        self.entries: List[_Entry] = []
        self.parent: Optional[_RNode] = None

    def mbr(self) -> Rectangle:
        out = self.entries[0].mbr
        for entry in self.entries[1:]:
            out = _union(out, entry.mbr)
        return out


class RTree:
    """Guttman R-tree with quadratic split."""

    def __init__(self, max_entries: int = 16):
        if max_entries < 4:
            raise ValueError("max_entries must be >= 4")
        self.max_entries = max_entries
        self.min_entries = max(2, max_entries // 2)
        self._root = _RNode(is_leaf=True)
        self._size = 0
        self.probes = 0  # search count, used by the cost model
        self.nodes_visited = 0  # cumulative nodes touched by searches

    def __len__(self) -> int:
        return self._size

    # ----------------------------------------------------------------- insert

    def insert(self, spatial_value, primary_key) -> None:
        mbr = mbr_of(spatial_value)
        leaf = self._choose_leaf(self._root, mbr)
        leaf.entries.append(_Entry(mbr, payload=(spatial_value, primary_key)))
        self._size += 1
        self._handle_overflow(leaf)
        self._adjust_upward(leaf)

    def _adjust_upward(self, node: _RNode) -> None:
        """Re-tighten every ancestor entry MBR after a leaf change."""
        while node.parent is not None:
            self._refresh_entry_mbrs(node.parent)
            node = node.parent

    def _choose_leaf(self, node: _RNode, mbr: Rectangle) -> _RNode:
        while not node.is_leaf:
            best = min(
                node.entries,
                key=lambda e: (_enlargement(e.mbr, mbr), _area(e.mbr)),
            )
            node = best.child
        return node

    def _handle_overflow(self, node: _RNode) -> None:
        while len(node.entries) > self.max_entries:
            sibling = self._split(node)
            parent = node.parent
            if parent is None:
                new_root = _RNode(is_leaf=False)
                for child in (node, sibling):
                    entry = _Entry(child.mbr(), child=child)
                    new_root.entries.append(entry)
                    child.parent = new_root
                self._root = new_root
                return
            parent.entries.append(_Entry(sibling.mbr(), child=sibling))
            sibling.parent = parent
            self._refresh_entry_mbrs(parent)
            node = parent

    def _split(self, node: _RNode) -> _RNode:
        """Quadratic split: pick the two seeds wasting the most area."""
        entries = node.entries
        worst_pair, worst_waste = (0, 1), -1.0
        for i in range(len(entries)):
            for j in range(i + 1, len(entries)):
                waste = (
                    _area(_union(entries[i].mbr, entries[j].mbr))
                    - _area(entries[i].mbr)
                    - _area(entries[j].mbr)
                )
                if waste > worst_waste:
                    worst_waste = waste
                    worst_pair = (i, j)
        i, j = worst_pair
        group_a = [entries[i]]
        group_b = [entries[j]]
        rest = [e for k, e in enumerate(entries) if k not in (i, j)]
        mbr_a, mbr_b = group_a[0].mbr, group_b[0].mbr
        for entry in rest:
            remaining = len(rest) - (len(group_a) + len(group_b) - 2)
            if len(group_a) + remaining <= self.min_entries:
                group_a.append(entry)
                mbr_a = _union(mbr_a, entry.mbr)
                continue
            if len(group_b) + remaining <= self.min_entries:
                group_b.append(entry)
                mbr_b = _union(mbr_b, entry.mbr)
                continue
            if _enlargement(mbr_a, entry.mbr) <= _enlargement(mbr_b, entry.mbr):
                group_a.append(entry)
                mbr_a = _union(mbr_a, entry.mbr)
            else:
                group_b.append(entry)
                mbr_b = _union(mbr_b, entry.mbr)
        node.entries = group_a
        sibling = _RNode(is_leaf=node.is_leaf)
        sibling.entries = group_b
        if not sibling.is_leaf:
            for entry in sibling.entries:
                entry.child.parent = sibling
        return sibling

    def _refresh_entry_mbrs(self, node: _RNode) -> None:
        for entry in node.entries:
            if entry.child is not None:
                entry.mbr = entry.child.mbr()

    # ----------------------------------------------------------------- delete

    def delete(self, spatial_value, primary_key) -> bool:
        """Remove one (value, pk) posting; returns False if absent."""
        mbr = mbr_of(spatial_value)
        found = self._find_leaf_entry(self._root, mbr, spatial_value, primary_key)
        if found is None:
            return False
        leaf, entry = found
        leaf.entries.remove(entry)
        self._size -= 1
        self._condense(leaf)
        return True

    def _find_leaf_entry(self, node: _RNode, mbr, value, pk):
        if node.is_leaf:
            for entry in node.entries:
                if entry.payload == (value, pk):
                    return node, entry
            return None
        for entry in node.entries:
            if entry.mbr.intersects(mbr):
                found = self._find_leaf_entry(entry.child, mbr, value, pk)
                if found is not None:
                    return found
        return None

    def _condense(self, node: _RNode) -> None:
        """Reinsert orphans from underfull nodes; shrink ancestor MBRs."""
        orphans: List[_Entry] = []
        while node.parent is not None:
            parent = node.parent
            if len(node.entries) < self.min_entries:
                parent.entries = [e for e in parent.entries if e.child is not node]
                self._collect_leaf_entries(node, orphans)
            else:
                self._refresh_entry_mbrs(parent)
            node = parent
        if not self._root.is_leaf and len(self._root.entries) == 1:
            self._root = self._root.entries[0].child
            self._root.parent = None
        for entry in orphans:
            value, pk = entry.payload
            self._size -= 1  # insert() will re-increment
            self.insert(value, pk)

    def _collect_leaf_entries(self, node: _RNode, out: List[_Entry]) -> None:
        if node.is_leaf:
            out.extend(node.entries)
        else:
            for entry in node.entries:
                self._collect_leaf_entries(entry.child, out)

    # ----------------------------------------------------------------- search

    def search(self, query) -> Iterator[Tuple[object, object]]:
        """Yield (spatial_value, primary_key) whose MBR intersects ``query``.

        ``query`` may be a Point/Rectangle/Circle; circles are searched by
        their MBR (callers apply the exact predicate afterwards, as the
        optimizer does for index-NLJ plans).
        """
        self.probes += 1
        query_mbr = mbr_of(query)
        stack = [self._root]
        while stack:
            node = stack.pop()
            self.nodes_visited += 1
            for entry in node.entries:
                if entry.mbr.intersects(query_mbr):
                    if node.is_leaf:
                        yield entry.payload
                    else:
                        stack.append(entry.child)

    def check_invariants(self) -> None:
        """Assert structural invariants (used by property tests)."""
        count = self._check_node(self._root, is_root=True)
        if count != self._size:
            raise AssertionError(f"size mismatch: counted {count}, size {self._size}")

    def _check_node(self, node: _RNode, is_root=False) -> int:
        if not is_root and len(node.entries) < self.min_entries:
            raise AssertionError("underfull non-root node")
        if len(node.entries) > self.max_entries:
            raise AssertionError("overfull node")
        if node.is_leaf:
            return len(node.entries)
        total = 0
        for entry in node.entries:
            child_mbr = entry.child.mbr()
            if (
                child_mbr.x1 < entry.mbr.x1
                or child_mbr.y1 < entry.mbr.y1
                or child_mbr.x2 > entry.mbr.x2
                or child_mbr.y2 > entry.mbr.y2
            ):
                raise AssertionError("entry MBR does not cover child")
            if entry.child.parent is not node:
                raise AssertionError("broken parent pointer")
            total += self._check_node(entry.child)
        return total
