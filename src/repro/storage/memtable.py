"""In-memory LSM component (the memtable).

Writes land here first; when the memtable reaches its budget it is frozen
and flushed into an immutable disk component.  Deletes are recorded as
tombstones so they shadow older components during reads and merges.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple


class Tombstone:
    """Singleton marker for a deleted key inside LSM components."""

    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self):
        return "<tombstone>"


TOMBSTONE = Tombstone()


class MemTable:
    """Mutable in-memory component: a hash map with sorted-scan support.

    ``entry_budget`` bounds the number of live entries before the owner
    should flush.  The memtable never rejects writes itself — flush policy
    lives in :class:`~repro.storage.lsm.LSMTree`.
    """

    def __init__(self, entry_budget: int = 4096):
        self.entry_budget = entry_budget
        self._entries: Dict[object, object] = {}
        self.min_lsn: Optional[int] = None
        self.max_lsn: Optional[int] = None

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def is_full(self) -> bool:
        return len(self._entries) >= self.entry_budget

    @property
    def is_empty(self) -> bool:
        return not self._entries

    def put(self, key, record, lsn: int) -> None:
        self._entries[key] = record
        self._note_lsn(lsn)

    def delete(self, key, lsn: int) -> None:
        self._entries[key] = TOMBSTONE
        self._note_lsn(lsn)

    def _note_lsn(self, lsn: int) -> None:
        if self.min_lsn is None:
            self.min_lsn = lsn
        self.max_lsn = lsn

    def get(self, key):
        """Return the record, TOMBSTONE, or None if the key is absent."""
        return self._entries.get(key)

    def contains(self, key) -> bool:
        return key in self._entries

    def sorted_entries(self) -> Iterator[Tuple[object, object]]:
        """Yield (key, record-or-tombstone) in key order."""
        for key in sorted(self._entries):
            yield key, self._entries[key]

    def scan(self) -> Iterator[Tuple[object, object]]:
        return self.sorted_entries()
