"""Datasets: hash-partitioned collections of ADM records.

A :class:`Dataset` is the AsterixDB unit of storage — a collection of
records of one datatype with a primary key, hash-partitioned across the
cluster's storage partitions.  Each partition is an LSM tree; secondary
indexes are partitioned the same way (local indexes, as in AsterixDB).

The dataset also tracks a monotonically increasing ``version`` — bumped on
every committed write — which the ingestion framework uses to reason about
which reference-data state a computing job observed (Section 5.1's
record-level consistency discussion), and an update-activity flag feeding
the Section 7.3 cost effects.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional, Tuple

from ..adm.schema import primary_key_of
from ..adm.types import Datatype
from ..errors import IndexError_, KeyNotFoundError
from .index import IndexKind, SecondaryIndex
from .lsm import LSMTree


def hash_partition(key, num_partitions: int) -> int:
    """Deterministic hash partitioning for primary keys.

    Python's builtin ``hash`` is salted per process for strings, which would
    make partition assignment non-reproducible across runs; use a stable FNV-1a
    over the repr instead.
    """
    data = repr(key).encode("utf-8")
    acc = 0xCBF29CE484222325
    for byte in data:
        acc ^= byte
        acc = (acc * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return acc % num_partitions


class Dataset:
    """A partitioned, indexed record store."""

    def __init__(
        self,
        name: str,
        datatype: Datatype,
        primary_key: str,
        num_partitions: int = 1,
        memtable_budget: int = 4096,
        validate: bool = True,
    ):
        if num_partitions < 1:
            raise ValueError("num_partitions must be >= 1")
        self.name = name
        self.datatype = datatype
        self.primary_key = primary_key
        self.num_partitions = num_partitions
        self.validate = validate
        self.partitions: List[LSMTree] = [
            LSMTree(memtable_budget=memtable_budget) for _ in range(num_partitions)
        ]
        # index name -> per-partition SecondaryIndex list
        self.indexes: Dict[str, List[SecondaryIndex]] = {}
        self._index_fields: Dict[str, Tuple[str, IndexKind]] = {}
        self.version = 0
        self._update_listeners: List[Callable[[str, object], None]] = []

    # ------------------------------------------------------------------ admin

    def create_index(self, name: str, field: str, kind: IndexKind) -> None:
        """Create a secondary index and bulk-load it from existing records."""
        if name in self.indexes:
            raise IndexError_(f"index {name!r} already exists on {self.name}")
        per_partition = [SecondaryIndex(name, field, kind) for _ in self.partitions]
        for pid, tree in enumerate(self.partitions):
            for key, record in tree.scan():
                per_partition[pid].on_insert(record, key)
        self.indexes[name] = per_partition
        self._index_fields[name] = (field, kind)

    def drop_index(self, name: str) -> None:
        """Drop a secondary index; scans over its field fall back to hash."""
        if name not in self.indexes:
            raise IndexError_(f"no index {name!r} on {self.name}")
        del self.indexes[name]
        del self._index_fields[name]

    def index_on(self, field: str, kind: Optional[IndexKind] = None):
        """Find an index over ``field`` (optionally of a specific kind)."""
        for name, (ifield, ikind) in self._index_fields.items():
            if ifield == field and (kind is None or kind is ikind):
                return name
        return None

    def add_update_listener(self, callback: Callable[[str, object], None]) -> None:
        """Register a hook fired as (operation, key) on every write."""
        self._update_listeners.append(callback)

    # ------------------------------------------------------------------ write

    def _partition_of(self, key) -> int:
        return hash_partition(key, self.num_partitions)

    def _prepare(self, record: dict):
        if self.validate:
            self.datatype.validate(record)
        key = primary_key_of(record, self.primary_key)
        return key, self._partition_of(key)

    def _commit(self, op: str, key) -> None:
        self.version += 1
        for listener in self._update_listeners:
            listener(op, key)

    def insert(self, record: dict) -> None:
        key, pid = self._prepare(record)
        tree = self.partitions[pid]
        tree.insert(key, record)  # raises DuplicateKeyError on conflict
        for per_partition in self.indexes.values():
            per_partition[pid].on_insert(record, key)
        self._commit("insert", key)

    def upsert(self, record: dict) -> None:
        key, pid = self._prepare(record)
        tree = self.partitions[pid]
        old = tree.get(key)
        tree.upsert(key, record)
        for per_partition in self.indexes.values():
            per_partition[pid].on_upsert(old, record, key)
        self._commit("upsert", key)

    def delete(self, key) -> None:
        pid = self._partition_of(key)
        tree = self.partitions[pid]
        old = tree.get(key)
        if old is None:
            raise KeyNotFoundError(key)
        tree.delete(key)
        for per_partition in self.indexes.values():
            per_partition[pid].on_delete(old, key)
        self._commit("delete", key)

    def insert_many(self, records) -> int:
        count = 0
        for record in records:
            self.insert(record)
            count += 1
        return count

    def upsert_many(self, records) -> int:
        count = 0
        for record in records:
            self.upsert(record)
            count += 1
        return count

    def flush_all(self) -> None:
        """Flush every partition's memtable (post-bulk-load quiescence).

        After a bulk load the in-memory components would otherwise stay
        active and every read would pay the §7.3 update-activity penalty;
        real systems reach a flushed steady state.
        """
        for tree in self.partitions:
            tree.flush()

    # ------------------------------------------------------------------- read

    def get(self, key) -> Optional[dict]:
        return self.partitions[self._partition_of(key)].get(key)

    def __len__(self) -> int:
        return sum(len(tree) for tree in self.partitions)

    def scan(self) -> Iterator[dict]:
        """Scan every partition (partition order, key order within)."""
        for tree in self.partitions:
            for _key, record in tree.scan():
                yield record

    def scan_partition(self, pid: int) -> Iterator[dict]:
        for _key, record in self.partitions[pid].scan():
            yield record

    # -------------------------------------------------------------- index API

    def index_probe_equal(self, index_name: str, value) -> Iterator[dict]:
        """Equality probe through a B-tree index, fetching the records."""
        for pid, index in enumerate(self.indexes[index_name]):
            for pk in index.probe_equal(value):
                record = self.partitions[pid].get(pk)
                if record is not None:
                    yield record

    def index_probe_spatial(self, index_name: str, query) -> Iterator[dict]:
        """Spatial MBR probe through an R-tree index, fetching the records."""
        for pid, index in enumerate(self.indexes[index_name]):
            for _value, pk in index.probe_spatial(query):
                record = self.partitions[pid].get(pk)
                if record is not None:
                    yield record

    # ------------------------------------------------------------ observables

    @property
    def update_activity(self) -> bool:
        """True when any partition has an active in-memory component."""
        return any(tree.in_memory_component_active for tree in self.partitions)

    @property
    def update_pressure(self) -> float:
        """How full the in-memory components are (0..1).

        Higher sustained update rates keep more entries in the memtables
        between flushes, making every reference read pay more fetching,
        locking, and comparison work (§7.3) — the cost model scales its
        activity penalty by this.
        """
        return min(
            1.0,
            sum(
                len(tree._memtable) / min(tree.memtable_budget, 256)
                for tree in self.partitions
            )
            / len(self.partitions),
        )

    @property
    def read_amplification(self) -> float:
        """Mean per-partition read amplification (Section 7.3 cost input)."""
        return sum(t.read_amplification for t in self.partitions) / len(
            self.partitions
        )

    def storage_stats(self) -> dict:
        out: Dict[str, int] = {}
        for tree in self.partitions:
            for stat_name, value in tree.stats.snapshot().items():
                out[stat_name] = out.get(stat_name, 0) + value
        return out
