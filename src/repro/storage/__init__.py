"""Storage substrate: LSM trees, B+/R-tree indexes, partitioned datasets."""

from .btree import BPlusTree
from .checkpoint import CheckpointStore, PartitionCursor, RunCheckpoint
from .component import SortedRunComponent, merge_components
from .dataset import Dataset, hash_partition
from .index import IndexKind, SecondaryIndex
from .lsm import LSMStats, LSMTree
from .memtable import TOMBSTONE, MemTable
from .persistence import load_dataset, save_dataset
from .rtree import RTree, mbr_of

__all__ = [
    "BPlusTree",
    "CheckpointStore",
    "Dataset",
    "PartitionCursor",
    "RunCheckpoint",
    "IndexKind",
    "LSMStats",
    "LSMTree",
    "MemTable",
    "RTree",
    "SecondaryIndex",
    "SortedRunComponent",
    "TOMBSTONE",
    "hash_partition",
    "load_dataset",
    "mbr_of",
    "save_dataset",
    "merge_components",
]
