"""A log-structured merge tree, the storage engine of one dataset partition.

Mirrors AsterixDB's LSM storage (Alsubaiee et al., PVLDB 2014) at the level
of detail the paper's experiments exercise:

* writes go to an in-memory component and, once it fills, are flushed into
  immutable sorted-run components;
* a prefix merge policy bounds the number of disk components;
* reads consult the memtable first, then disk components newest-to-oldest,
  honoring tombstones;
* *update activity* is observable: Section 7.3 of the paper shows that even
  one update per second activates the in-memory component and makes every
  reference-data access pay extra locking/merge-read cost.  We expose
  ``read_amplification`` and ``in_memory_component_active`` so the cost
  model can charge for that effect.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

from ..errors import DuplicateKeyError, KeyNotFoundError
from .component import SortedRunComponent, merge_components
from .memtable import TOMBSTONE, MemTable


@dataclass
class LSMStats:
    """Counters for observing storage behaviour in tests and benches."""

    inserts: int = 0
    upserts: int = 0
    deletes: int = 0
    lookups: int = 0
    flushes: int = 0
    merges: int = 0
    wal_appends: int = 0
    component_reads: int = 0

    def snapshot(self) -> dict:
        return dict(self.__dict__)


@dataclass
class _WalRecord:
    lsn: int
    op: str
    key: object
    record: object = None


class LSMTree:
    """One partition's primary (or secondary) LSM index.

    ``memtable_budget`` is the flush threshold in entries;
    ``merge_fanin`` is the prefix merge policy trigger: when the number of
    disk components reaches it, they are merged into one.
    """

    def __init__(self, memtable_budget: int = 4096, merge_fanin: int = 4):
        if memtable_budget < 1:
            raise ValueError("memtable_budget must be >= 1")
        if merge_fanin < 2:
            raise ValueError("merge_fanin must be >= 2")
        self.memtable_budget = memtable_budget
        self.merge_fanin = merge_fanin
        self._memtable = MemTable(memtable_budget)
        self._components: List[SortedRunComponent] = []  # newest first
        self._wal: List[_WalRecord] = []
        self._next_lsn = 0
        self.stats = LSMStats()

    # ------------------------------------------------------------------ write

    def _append_wal(self, op: str, key, record=None) -> int:
        lsn = self._next_lsn
        self._next_lsn += 1
        self._wal.append(_WalRecord(lsn, op, key, record))
        self.stats.wal_appends += 1
        return lsn

    def insert(self, key, record) -> None:
        """Insert; raises :class:`DuplicateKeyError` if the key exists."""
        if self.get(key) is not None:
            raise DuplicateKeyError(key)
        lsn = self._append_wal("insert", key, record)
        self._memtable.put(key, record, lsn)
        self.stats.inserts += 1
        self._maybe_flush()

    def upsert(self, key, record) -> None:
        """Insert or replace, the paper's UPSERT semantics."""
        lsn = self._append_wal("upsert", key, record)
        self._memtable.put(key, record, lsn)
        self.stats.upserts += 1
        self._maybe_flush()

    def delete(self, key) -> None:
        """Delete; raises :class:`KeyNotFoundError` if the key is absent."""
        if self.get(key) is None:
            raise KeyNotFoundError(key)
        lsn = self._append_wal("delete", key)
        self._memtable.delete(key, lsn)
        self.stats.deletes += 1
        self._maybe_flush()

    def _maybe_flush(self) -> None:
        if self._memtable.is_full:
            self.flush()

    def flush(self) -> None:
        """Freeze the memtable into a new newest disk component."""
        if self._memtable.is_empty:
            return
        entries = list(self._memtable.sorted_entries())
        self._components.insert(0, SortedRunComponent(entries, level=0))
        self._memtable = MemTable(self.memtable_budget)
        self.stats.flushes += 1
        if len(self._components) >= self.merge_fanin:
            self.merge_all()

    def merge_all(self) -> None:
        """Prefix merge policy: collapse all disk components into one."""
        if len(self._components) <= 1:
            return
        merged = merge_components(self._components, drop_tombstones=True)
        self._components = [merged]
        self.stats.merges += 1

    # ------------------------------------------------------------------- read

    def get(self, key):
        """Point lookup across memtable and components; None if absent."""
        self.stats.lookups += 1
        found = self._memtable.get(key)
        if found is not None:
            return None if found is TOMBSTONE else found
        for comp in self._components:
            self.stats.component_reads += 1
            found = comp.get(key)
            if found is not None:
                return None if found is TOMBSTONE else found
        return None

    def contains(self, key) -> bool:
        return self.get(key) is not None

    def scan(self) -> Iterator[Tuple[object, object]]:
        """Full scan in key order, newest version of each key, no tombstones."""
        yield from self.range_scan()

    def range_scan(
        self, low=None, high=None, include_low=True, include_high=True
    ) -> Iterator[Tuple[object, object]]:
        """Merge-scan the memtable and every component over a key range."""
        sources: List[Iterator[Tuple[object, object]]] = []
        mem = [
            (k, v)
            for k, v in self._memtable.sorted_entries()
            if _in_range(k, low, high, include_low, include_high)
        ]
        sources.append(iter(mem))
        for comp in self._components:
            sources.append(comp.range_scan(low, high, include_low, include_high))
        yield from _merge_scan(sources)

    # ------------------------------------------------------------- observables

    def __len__(self) -> int:
        return sum(1 for _ in self.scan())

    @property
    def in_memory_component_active(self) -> bool:
        """True when un-flushed writes exist — reads must check the memtable.

        Section 7.3: any nonzero reference-update rate activates the
        in-memory component and slows every enrichment-time access.
        """
        return not self._memtable.is_empty

    @property
    def component_count(self) -> int:
        return len(self._components)

    @property
    def read_amplification(self) -> int:
        """Number of structures a cold point lookup may touch."""
        return (1 if self.in_memory_component_active else 0) + len(self._components)

    @property
    def wal_length(self) -> int:
        return len(self._wal)

    def recover_from_wal(self) -> "LSMTree":
        """Rebuild an equivalent tree by replaying the write-ahead log.

        Disk components are not persisted to real disk in this simulation,
        so recovery replays the full log; the test suite uses this to assert
        that the WAL alone reconstructs the logical state.
        """
        fresh = LSMTree(self.memtable_budget, self.merge_fanin)
        for entry in self._wal:
            if entry.op in ("insert", "upsert"):
                fresh.upsert(entry.key, entry.record)
            elif entry.op == "delete":
                if fresh.contains(entry.key):
                    fresh.delete(entry.key)
        return fresh


def _in_range(key, low, high, include_low, include_high) -> bool:
    if low is not None:
        if key < low or (not include_low and key == low):
            return False
    if high is not None:
        if key > high or (not include_high and key == high):
            return False
    return True


def _merge_scan(
    sources: List[Iterator[Tuple[object, object]]],
) -> Iterator[Tuple[object, object]]:
    """K-way merge, newest source first; tombstones suppress older entries.

    The sorted-list merge is simpler than a heap and fine at the component
    counts the prefix policy allows (bounded by ``merge_fanin``).
    """
    entries: List[Tuple[object, int, object]] = []
    for priority, source in enumerate(sources):
        for key, value in source:
            entries.append((key, priority, value))
    entries.sort(key=lambda t: (_sort_key(t[0]), t[1]))
    last_key = object()
    for key, _priority, value in entries:
        if key == last_key:
            continue
        last_key = key
        if value is not TOMBSTONE:
            yield key, value


def _sort_key(key):
    # Keys within one LSM tree are homogeneous; tag by type name so mixed
    # trees (used in some property tests) still order deterministically.
    return (type(key).__name__, key)
