"""Durable run checkpoints: restart a *whole feed run*, not just an actor.

The supervised-recovery layer replays an in-flight batch after an actor
crash, but everything it relies on — closure state, the intake buffer,
the sequencer — lives in process memory.  The paper's §6 recoverability
discussion wants more: a feed interrupted by a process kill must restart
from durable state with zero acked loss.  A :class:`CheckpointStore`
provides that: on each storage commit the pipeline persists, per intake
partition, the acked ``seq`` watermark and the adapter resume cursor of
the last fully-deposited chunk at or below it, plus the acked-batch
high-water mark.  ``resume_run(...)`` re-opens each partition adapter
from its persisted cursor; records between the cursor and the watermark
are replayed (at-least-once) and deduped downstream by primary-key
upsert, so the restarted run's final datasets are byte-identical to an
uninterrupted run.

Files are one JSON document per feed, published atomically (write to a
temp file, then ``os.replace``) exactly like dataset snapshots, so a kill
mid-commit leaves the previous checkpoint intact.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, Optional

from ..errors import StorageError

FORMAT_VERSION = 1


@dataclass
class PartitionCursor:
    """One intake partition's durable position.

    ``acked_seq`` is the greatest adapter ``seq`` whose batch has been
    released by the sequencer and stored (``-1`` — nothing acked).
    ``resume`` is the adapter resume cursor of the last fully-deposited
    chunk at or below that watermark — what ``envelopes(resume_from=...)``
    takes: an ``int`` seq watermark for count-based adapters, a
    ``(line, byte_offset)`` pair for a file partition, or ``None`` to
    start from the beginning.  The gap ``(resume, acked_seq]`` is
    replayed on restart and deduped by pk-upsert.
    """

    acked_seq: int = -1
    resume: object = None


@dataclass
class RunCheckpoint:
    """A feed run's durable restart state."""

    feed: str
    intake_partitions: int = 1
    cursors: Dict[int, PartitionCursor] = field(default_factory=dict)
    acked_batches: int = 0  # batch-index high-water (next expected index)
    records_stored: int = 0
    complete: bool = False  # the run finished; kept for inspection


def _cursor_to_json(cursor: PartitionCursor) -> Dict[str, object]:
    resume = cursor.resume
    if isinstance(resume, tuple):
        resume = list(resume)
    return {"acked_seq": cursor.acked_seq, "resume": resume}


def _cursor_from_json(payload: Dict[str, object]) -> PartitionCursor:
    resume = payload.get("resume")
    if isinstance(resume, list):
        resume = tuple(resume)
    return PartitionCursor(acked_seq=int(payload.get("acked_seq", -1)), resume=resume)


class CheckpointStore:
    """Atomic per-feed checkpoint files under one directory."""

    def __init__(self, dir_path: str):
        self.dir_path = dir_path
        os.makedirs(dir_path, exist_ok=True)
        self.commits = 0

    def path_for(self, feed: str) -> str:
        return os.path.join(self.dir_path, f"{feed}.ckpt.json")

    def commit(self, checkpoint: RunCheckpoint) -> str:
        """Durably publish ``checkpoint``; returns the file path.

        The write is atomic (temp file + ``os.replace``): a crash during
        commit leaves the previous checkpoint readable.
        """
        payload = {
            "format_version": FORMAT_VERSION,
            "feed": checkpoint.feed,
            "intake_partitions": checkpoint.intake_partitions,
            "cursors": {
                str(p): _cursor_to_json(c)
                for p, c in sorted(checkpoint.cursors.items())
            },
            "acked_batches": checkpoint.acked_batches,
            "records_stored": checkpoint.records_stored,
            "complete": checkpoint.complete,
        }
        path = self.path_for(checkpoint.feed)
        tmp_path = path + ".tmp"
        with open(tmp_path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(payload, sort_keys=True) + "\n")
        os.replace(tmp_path, path)  # atomic publish
        self.commits += 1
        return path

    def load(self, feed: str) -> Optional[RunCheckpoint]:
        """Read the feed's checkpoint; ``None`` when none was committed."""
        path = self.path_for(feed)
        if not os.path.exists(path):
            return None
        with open(path, "r", encoding="utf-8") as handle:
            try:
                payload = json.load(handle)
            except json.JSONDecodeError as exc:
                raise StorageError(f"{path}: malformed checkpoint") from exc
        version = payload.get("format_version")
        if version != FORMAT_VERSION:
            raise StorageError(
                f"{path}: unsupported checkpoint format version {version!r}"
            )
        return RunCheckpoint(
            feed=payload["feed"],
            intake_partitions=int(payload.get("intake_partitions", 1)),
            cursors={
                int(p): _cursor_from_json(c)
                for p, c in payload.get("cursors", {}).items()
            },
            acked_batches=int(payload.get("acked_batches", 0)),
            records_stored=int(payload.get("records_stored", 0)),
            complete=bool(payload.get("complete", False)),
        )

    def clear(self, feed: str) -> None:
        """Remove the feed's checkpoint file (no-op when absent)."""
        try:
            os.remove(self.path_for(feed))
        except FileNotFoundError:
            pass
