"""repro — a reproduction of "An IDEA: An Ingestion Framework for Data
Enrichment in AsterixDB" (Wang & Carey, VLDB 2019).

The package provides an embedded AsterixDB-like system: the ADM data
model, LSM storage with secondary indexes, a Hyracks-style partitioned job
runtime over a simulated cluster, a SQL++ subset, Java/SQL++ UDFs, and —
the paper's contribution — a layered data-feed ingestion framework whose
computing jobs refresh enrichment state per record batch.

Quickstart::

    from repro import AsterixLite
    system = AsterixLite(num_nodes=3)
    system.execute('''
        CREATE TYPE TweetType AS OPEN { id: int64, text: string };
        CREATE DATASET Tweets(TweetType) PRIMARY KEY id;
    ''')
    system.insert("Tweets", [{"id": 0, "text": "Let there be light"}])
    print(system.query("SELECT VALUE t.text FROM Tweets t"))
"""

from .core import AsterixLite
from .errors import ReproError

__version__ = "1.0.0"

__all__ = ["AsterixLite", "ReproError", "__version__"]
