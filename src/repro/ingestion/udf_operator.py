"""The UDF Evaluator operator (Fig. 23's computing-job core)."""

from __future__ import annotations

from typing import Callable, List, Optional

from ..hyracks.cost import WorkMeter
from ..hyracks.frame import Frame
from ..hyracks.job import Operator, OperatorContext
from ..sqlpp import columnar
from ..sqlpp.ast import SelectBlock
from ..sqlpp.evaluator import EvaluationContext, Evaluator


def make_invoker(functions, registry) -> Callable:
    """Build ``invoke(record, eval_ctx) -> list of enriched records``.

    Chains the feed's attached functions; a SQL++ UDF returning a
    collection is unnested (the ``SELECT VALUE f(t)`` of Figure 10).

    Each attached SQL++ function is resolved through a *prepared* invoker
    (the §5.2 predeployed-job analog): name lookup and arity checking
    happen once per registry version instead of once per record, while a
    ``replace_sqlpp`` mid-feed still takes effect on the very next call.
    """

    steps = []
    for fn in functions:
        if fn.is_java:
            library = fn.library or "udflib"

            def java_step(rec, eval_ctx, _library=library, _name=fn.name):
                return registry.invoke_java(_library, _name, [rec], eval_ctx)

            steps.append(java_step)
        else:
            prepared = registry.prepared_invoker(fn.name)

            def sqlpp_step(rec, eval_ctx, _prepared=prepared):
                return _prepared([rec], eval_ctx)

            steps.append(sqlpp_step)

    def invoke(record: dict, eval_ctx: EvaluationContext) -> List[dict]:
        current = [record]
        for step in steps:
            produced: List[dict] = []
            for rec in current:
                result = step(rec, eval_ctx)
                if isinstance(result, list):
                    produced.extend(result)
                elif result is not None:
                    produced.append(result)
            current = produced
        return current

    return invoke


def make_batch_invoker(functions, registry) -> Optional[Callable]:
    """Build ``invoke_batch(records, eval_ctx) -> rows or None``.

    The columnar counterpart of :func:`make_invoker`: each attached SQL++
    UDF whose body is a top-level FROM-less ``SelectBlock`` is compiled to
    a :class:`~repro.sqlpp.columnar.BlockKernel` and run one whole batch
    at a time.  Returns ``None`` at build time when any attached function
    is Java (instance lifecycle + metering are per record); the returned
    callable returns ``None`` at run time whenever the batch must take the
    scalar path (plans disabled, a non-unary or replaced function, an
    unsupported block shape) — the caller then falls back to the
    record-at-a-time :func:`make_invoker` loop.

    A SQL++ UDF returning a collection is unnested exactly as in
    :func:`make_invoker`: a kernel's output rows are the concatenation of
    the per-record result lists, so chaining feeds the flattened rows to
    the next function.
    """
    if not functions or any(fn.is_java for fn in functions):
        return None
    names = tuple(fn.name for fn in functions)
    # Resolved once per registry version (the §5.2 predeployed analog);
    # a replace_sqlpp bumps the version so the next batch re-resolves.
    state = {"version": -1, "udfs": None}

    def invoke_batch(records: List[dict], eval_ctx: EvaluationContext):
        if not eval_ctx.use_plans:
            return None
        if state["version"] != registry.version:
            udfs = []
            for name in names:
                udf = registry.get(name)
                if udf.arity != 1 or not isinstance(
                    udf.definition.body, SelectBlock
                ):
                    udfs = None
                    break
                udfs.append(udf)
            state["udfs"] = udfs
            state["version"] = registry.version
        udfs = state["udfs"]
        if udfs is None:
            return None
        plan_cache = eval_ctx.plan_cache
        version = registry.version
        ev = Evaluator(eval_ctx)
        fallback_columns = 0
        current = records
        for udf in udfs:
            params = tuple(udf.definition.params)
            plan = plan_cache.plan_for(
                udf.definition.body, frozenset(params), eval_ctx.catalog
            )
            kernel = columnar.kernel_for(plan, params, eval_ctx, version)
            if kernel is columnar.UNSUPPORTED:
                plan_cache.scalar_fallbacks += 1
                return None
            fallback_columns += kernel.fallback_lets
            current = kernel.run(ev, current)
        plan_cache.vectorized_batches += 1
        plan_cache.vectorized_records += len(records)
        plan_cache.scalar_fallbacks += fallback_columns
        return current

    return invoke_batch


class UdfEvaluatorOperator(Operator):
    """Applies the attached UDF(s) to each record of each frame.

    The operator owns a per-partition :class:`WorkMeter`; before evaluating
    it installs that meter on the shared evaluation context so probe work
    is charged to this partition's node, while cache *builds* accumulate on
    the context's ``shared_meter`` (split across partitions by the feed
    driver).
    """

    def __init__(
        self,
        ctx: OperatorContext,
        eval_ctx: EvaluationContext,
        invoker: Callable,
        soft_errors=None,
        batch_invoker: Optional[Callable] = None,
    ):
        super().__init__(ctx)
        self.eval_ctx = eval_ctx
        self.invoker = invoker
        self.soft_errors = soft_errors
        self.batch_invoker = batch_invoker
        self.records_in = 0
        self.records_out = 0

    def next_frame(self, frame: Frame) -> None:
        # The plan cache's columnar counters are registry-shared; on a
        # multi-feed runtime each feed attributes its own share by
        # snapshotting around the (synchronous) invocation into the
        # context's tally — no other actor can run inside this window.
        tally = getattr(self.eval_ctx, "columnar_tally", None)
        if tally is not None:
            cache = self.eval_ctx.plan_cache
            before = {name: getattr(cache, name) for name in tally}
        meter = WorkMeter(scale=self.eval_ctx.reference_work_scale)
        out = None
        if self.batch_invoker is not None and len(frame) > 0:
            out = self._batch_frame(frame, meter)
        if out is None:
            out = self._scalar_frame(frame, meter)
        if tally is not None:
            for name in tally:
                tally[name] += getattr(cache, name) - before[name]
        cost = self.ctx.cost
        self.ctx.charge(cost.udf_eval_base * len(frame) + meter.charge(cost))
        if out:
            self.emit(Frame(out))

    def _batch_frame(self, frame: Frame, meter: WorkMeter):
        """One whole-batch columnar attempt; ``None`` means scalar rerun.

        Work is metered on a scratch meter and merged into ``meter`` only
        on success, so an aborted attempt charges nothing.  Builds the
        attempt installed in the batch cache survive the abort — they are
        idempotent within a generation, so the scalar rerun finds them
        already charged and totals stay byte-identical.
        """
        eval_ctx = self.eval_ctx
        scratch = WorkMeter(scale=eval_ctx.reference_work_scale)
        previous_meter = eval_ctx.meter
        eval_ctx.meter = scratch
        try:
            out = self.batch_invoker(list(frame), eval_ctx)
        except Exception:
            # Unsupported-at-runtime shapes and per-record soft errors
            # alike: the scalar loop re-runs the frame and applies the
            # soft-error policy with exact record attribution.
            eval_ctx.plan_cache.scalar_fallbacks += 1
            return None
        finally:
            eval_ctx.meter = previous_meter
        if out is None:
            return None
        meter.absorb(scratch)
        self.records_in += len(frame)
        self.records_out += len(out)
        if self.soft_errors is not None:
            # One batch-level success: note_success only resets the
            # consecutive-failure count, so it equals N per-record calls.
            self.soft_errors.note_success()
        return out

    def _scalar_frame(self, frame: Frame, meter: WorkMeter) -> List[dict]:
        import json as _json

        previous_meter = self.eval_ctx.meter
        self.eval_ctx.meter = meter
        out: List[dict] = []
        try:
            for record in frame:
                self.records_in += 1
                if self.soft_errors is None:
                    enriched = self.invoker(record, self.eval_ctx)
                else:
                    # Per-record UDF evaluation failures are soft errors:
                    # the policy decides skip / dead-letter / escalate.
                    try:
                        enriched = self.invoker(record, self.eval_ctx)
                    except Exception as exc:
                        self.soft_errors.handle(
                            "udf",
                            _json.dumps(record, default=str, sort_keys=True),
                            exc,
                        )
                        continue
                    self.soft_errors.note_success()
                out.extend(enriched)
                self.records_out += len(enriched)
        finally:
            self.eval_ctx.meter = previous_meter
        return out
