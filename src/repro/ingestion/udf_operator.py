"""The UDF Evaluator operator (Fig. 23's computing-job core)."""

from __future__ import annotations

from typing import Callable, List

from ..hyracks.cost import WorkMeter
from ..hyracks.frame import Frame
from ..hyracks.job import Operator, OperatorContext
from ..sqlpp.evaluator import EvaluationContext


def make_invoker(functions, registry) -> Callable:
    """Build ``invoke(record, eval_ctx) -> list of enriched records``.

    Chains the feed's attached functions; a SQL++ UDF returning a
    collection is unnested (the ``SELECT VALUE f(t)`` of Figure 10).

    Each attached SQL++ function is resolved through a *prepared* invoker
    (the §5.2 predeployed-job analog): name lookup and arity checking
    happen once per registry version instead of once per record, while a
    ``replace_sqlpp`` mid-feed still takes effect on the very next call.
    """

    steps = []
    for fn in functions:
        if fn.is_java:
            library = fn.library or "udflib"

            def java_step(rec, eval_ctx, _library=library, _name=fn.name):
                return registry.invoke_java(_library, _name, [rec], eval_ctx)

            steps.append(java_step)
        else:
            prepared = registry.prepared_invoker(fn.name)

            def sqlpp_step(rec, eval_ctx, _prepared=prepared):
                return _prepared([rec], eval_ctx)

            steps.append(sqlpp_step)

    def invoke(record: dict, eval_ctx: EvaluationContext) -> List[dict]:
        current = [record]
        for step in steps:
            produced: List[dict] = []
            for rec in current:
                result = step(rec, eval_ctx)
                if isinstance(result, list):
                    produced.extend(result)
                elif result is not None:
                    produced.append(result)
            current = produced
        return current

    return invoke


class UdfEvaluatorOperator(Operator):
    """Applies the attached UDF(s) to each record of each frame.

    The operator owns a per-partition :class:`WorkMeter`; before evaluating
    it installs that meter on the shared evaluation context so probe work
    is charged to this partition's node, while cache *builds* accumulate on
    the context's ``shared_meter`` (split across partitions by the feed
    driver).
    """

    def __init__(
        self,
        ctx: OperatorContext,
        eval_ctx: EvaluationContext,
        invoker: Callable,
        soft_errors=None,
    ):
        super().__init__(ctx)
        self.eval_ctx = eval_ctx
        self.invoker = invoker
        self.soft_errors = soft_errors
        self.records_in = 0
        self.records_out = 0

    def next_frame(self, frame: Frame) -> None:
        import json as _json

        meter = WorkMeter(scale=self.eval_ctx.reference_work_scale)
        previous_meter = self.eval_ctx.meter
        self.eval_ctx.meter = meter
        out: List[dict] = []
        try:
            for record in frame:
                self.records_in += 1
                if self.soft_errors is None:
                    enriched = self.invoker(record, self.eval_ctx)
                else:
                    # Per-record UDF evaluation failures are soft errors:
                    # the policy decides skip / dead-letter / escalate.
                    try:
                        enriched = self.invoker(record, self.eval_ctx)
                    except Exception as exc:
                        self.soft_errors.handle(
                            "udf",
                            _json.dumps(record, default=str, sort_keys=True),
                            exc,
                        )
                        continue
                    self.soft_errors.note_success()
                out.extend(enriched)
                self.records_out += len(enriched)
        finally:
            self.eval_ctx.meter = previous_meter
        cost = self.ctx.cost
        self.ctx.charge(cost.udf_eval_base * len(frame) + meter.charge(cost))
        if out:
            self.emit(Frame(out))
