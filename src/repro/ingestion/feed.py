"""Feed definitions and run reports."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..runtime.faults import FaultPlan
    from ..runtime.metrics import ExternalMetrics, FaultMetrics, RuntimeMetrics
    from .external import EnricherBinding
    from .policy import FeedPolicy


class Framework(enum.Enum):
    """Which ingestion framework executes the feed."""

    STATIC = "static"  # the old AsterixDB pipeline (one continuous job)
    DYNAMIC = "dynamic"  # the paper's layered framework (intake/compute/store)


class ComputingModel(enum.Enum):
    """§4.3's three computing models for stateful UDFs on a feed."""

    PER_RECORD = "per_record"  # Model 1: refresh state per record
    PER_BATCH = "per_batch"  # Model 2: refresh state per batch (the paper's)
    STREAM = "stream"  # Model 3: initialize once, never refresh


@dataclass
class AttachedFunction:
    """A UDF attached to a feed (``APPLY FUNCTION`` in the DDL)."""

    name: str
    language: str = "sqlpp"  # 'sqlpp' | 'java'
    library: Optional[str] = None  # java library name, e.g. 'udflib'

    @property
    def is_java(self) -> bool:
        return self.language == "java"


@dataclass
class FeedDefinition:
    """Everything needed to run one feed."""

    name: str
    target_dataset: str
    datatype: Optional[object] = None  # adm.Datatype for parse-time coercion
    batch_size: int = 420  # the paper's 1X
    framework: Framework = Framework.DYNAMIC
    computing_model: ComputingModel = ComputingModel.PER_BATCH
    functions: List[AttachedFunction] = field(default_factory=list)
    balanced_intake: bool = False  # adapter on all nodes vs node 0 only
    intake_holder_capacity: int = 64  # frames per passive partition holder
    write_mode: str = "upsert"
    stream_memory_budget: int = 1 << 20  # records; Model 3 spill threshold
    reference_work_scale: float = 1.0  # charge ref work as if x larger
    storage_queue_capacity: int = 8  # computing->storage work items in flight
    #: fault handling: soft errors, congestion, restarts (None = Basic,
    #: i.e. the fail-fast seed behavior)
    policy: Optional["FeedPolicy"] = None
    #: deterministic injected-fault schedule (None = no faults)
    fault_plan: Optional["FaultPlan"] = None
    #: external-enrichment bindings routed through the resilient
    #: EnrichmentCoordinator (empty = the local-only enrichment path)
    external_enrichers: List["EnricherBinding"] = field(default_factory=list)


@dataclass
class BatchStats:
    """Per-computing-job observations (drives Figure 26)."""

    batch_index: int
    records: int
    makespan_seconds: float
    startup_seconds: float
    shared_state_seconds: float
    #: slice number when the batch was split across the worker pool
    #: (intra-batch parallelism); ``0`` for an unsplit batch
    sub_index: int = 0


@dataclass
class FeedRunReport:
    """Outcome of one feed run on the simulated cluster."""

    feed_name: str
    framework: str
    records_ingested: int
    records_stored: int
    simulated_seconds: float
    intake_seconds: float
    computing_seconds: float
    storage_seconds: float
    num_computing_jobs: int = 0
    batch_stats: List[BatchStats] = field(default_factory=list)
    stalls: int = 0  # intake backpressure events
    fixed_start_seconds: float = 0.0  # one-time feed start cost (amortized)
    extra: Dict[str, float] = field(default_factory=dict)
    #: worker-pool accounting: ``computing_seconds`` is the layer's
    #: *aggregate* busy across all workers (it can exceed any wall-clock
    #: span when workers overlap); ``computing_wall_seconds`` is the clock
    #: span from the first batch's invoke to the last batch's completion;
    #: ``computing_worker_busy`` is each worker's own aggregate
    computing_wall_seconds: float = 0.0
    computing_worker_busy: Dict[str, float] = field(default_factory=dict)
    peak_computing_workers: int = 1
    scale_ups: int = 0  # elastic pool grow events
    scale_downs: int = 0  # elastic pool shrink events
    #: cross-batch enrichment-state cache activity during this run (all
    #: zero when the policy leaves the cache disabled); ``bytes`` is the
    #: cache's resident size at run end, not a per-run delta
    state_cache_hits: int = 0
    state_cache_misses: int = 0
    state_cache_evictions: int = 0
    state_cache_bytes: int = 0
    #: key-level enrichment memo activity during this run (same
    #: conventions as the state cache fields; spans all three probe
    #: paths — scalar, columnar, and external — which share one memo)
    memo_hits: int = 0
    memo_misses: int = 0
    memo_evictions: int = 0
    memo_bytes: int = 0
    #: columnar execution during this run (per-run deltas of the shared
    #: plan cache's cumulative counters): batches/records enriched through
    #: batch kernels, and scalar fallbacks (whole frames plus individual
    #: fallen-back columns)
    vectorized_batches: int = 0
    vectorized_records: int = 0
    scalar_fallbacks: int = 0
    #: partitioned intake: number of intake partition actors and each
    #: partition's aggregate busy seconds (empty for the single actor)
    intake_partitions: int = 1
    intake_partition_busy: Dict[int, float] = field(default_factory=dict)
    #: intra-batch parallelism: sub-batch slices dispatched across the
    #: worker pool (0 when no batch was split)
    subbatches_dispatched: int = 0
    #: durable-restart accounting: batches released in order by the
    #: sequencer, checkpoint commits written, and whether this run resumed
    #: from a durable checkpoint
    acked_batches: int = 0
    checkpoint_commits: int = 0
    resumed_from_checkpoint: bool = False
    #: external-enrichment resilience counters (``None`` when the feed has
    #: no external enrichers) and the fraction of enrichment-requiring
    #: stored records fully enriched by run end
    external: Optional["ExternalMetrics"] = None
    enrichment_completeness: float = 1.0
    #: multi-tenant fabric attribution (zeros/empty without a
    #: :class:`~repro.ingestion.fabric.FeedFabric` — default-off parity):
    #: peak workers held beyond the policy floor, the feed's
    #: ``(sim_seconds, held_workers)`` lease steps, and the memory
    #: governor's ``(sim_seconds, cache_kind, granted_bytes)`` grants
    borrowed_workers: int = 0
    lease_timeline: List[tuple] = field(default_factory=list)
    governor_grants: List[tuple] = field(default_factory=list)
    #: per-layer busy/idle/blocked timelines, holder high-water marks,
    #: stall counts, and batch latencies from the discrete-event runtime
    runtime: Optional["RuntimeMetrics"] = None

    @property
    def throughput(self) -> float:
        """Steady-state records per simulated second.

        The paper measures continuous ingestion over millions of records,
        where the once-per-feed startup (job compilation, distribution)
        amortizes to nothing; we exclude it so scaled-down runs report the
        same steady-state quantity.  Per-batch computing-job overheads —
        the phenomenon the paper studies — remain fully included.
        """
        seconds = self.simulated_seconds - self.fixed_start_seconds
        if seconds <= 0:
            return 0.0
        return self.records_ingested / seconds

    @property
    def computing_concurrency(self) -> float:
        """Achieved computing overlap: aggregate busy over wall span.

        ``1.0`` for a single serialized worker; approaches the pool size
        when workers overlap perfectly.  ``0.0`` when no batch ran.
        """
        if self.computing_wall_seconds <= 0:
            return 0.0
        return self.computing_seconds / self.computing_wall_seconds

    @property
    def vectorized_fraction(self) -> float:
        """Fraction of ingested records enriched on the columnar path."""
        if self.records_ingested <= 0:
            return 0.0
        return min(1.0, self.vectorized_records / self.records_ingested)

    @property
    def faults(self) -> Optional["FaultMetrics"]:
        """This run's failure/recovery counters (``None`` if no fault layer)."""
        return self.runtime.faults if self.runtime is not None else None

    def latency_percentile(self, q: float) -> float:
        """Nearest-rank batch-latency percentile (0.0 before the run)."""
        if self.runtime is None:
            return 0.0
        return self.runtime.latency_percentile(q)

    @property
    def latency_p50(self) -> float:
        return self.latency_percentile(50)

    @property
    def latency_p95(self) -> float:
        return self.latency_percentile(95)

    @property
    def latency_p99(self) -> float:
        return self.latency_percentile(99)

    def latency_summary(self) -> Dict[str, float]:
        """Count, p50/p95/p99, and max batch latency (SLO groundwork)."""
        if self.runtime is None:
            return {"count": 0, "p50": 0.0, "p95": 0.0, "p99": 0.0, "max": 0.0}
        return self.runtime.latency_summary()

    @property
    def refresh_period(self) -> float:
        """Mean computing-job execution time (Figure 26's metric)."""
        if not self.batch_stats:
            return 0.0
        return sum(b.makespan_seconds for b in self.batch_stats) / len(
            self.batch_stats
        )

    @property
    def refresh_rate(self) -> float:
        """Computing jobs per steady-state simulated second (§7.1's metric).

        Uses the same convention as ``throughput``: the one-time feed
        start cost (``fixed_start_seconds``) is excluded from the
        denominator, so both metrics describe the same steady-state
        regime.
        """
        seconds = self.simulated_seconds - self.fixed_start_seconds
        if seconds <= 0:
            return 0.0
        return self.num_computing_jobs / seconds
