"""The two ingestion frameworks: static (old) and dynamic (the paper's).

**Static** (§2.3 / §7.1 "Static Ingestion"): one continuous Hyracks job —
adapter and parser coupled on the intake node(s), attached UDFs evaluated
with the *stream* model (intermediate state initialized once, never
refreshed), records hash-partitioned into storage.  Stateful SQL++ UDFs
are rejected, matching current AsterixDB (§4.3.4), unless the caller
explicitly opts into the Model-3 ablation.

**Dynamic** (§5/§6, the contribution): three layers —

* an *intake job* running for the feed's lifetime: adapter + round-robin
  partitioner + passive intake partition holders;
* a *computing job*, predeployed and invoked once per batch by the Active
  Feed Manager: collector + parser + UDF evaluator, with intermediate
  state refreshed every invocation;
* a *storage job* running for the feed's lifetime: active storage
  partition holders + primary-key hash partitioner + LSM writers.

Execution model: each layer is a :class:`~repro.runtime.Process` on the
cluster's discrete-event runtime.  The intake process blocks (with real
backpressure accounting) when a bounded partition holder fills; the
computing process starves (idle) when the holders are empty; storage
overlaps the next computing job through a bounded work channel.  Layer
overlap, stalls, and the feed's makespan all *emerge from the schedule* —
the report's steady-state throughput still equals records divided by the
bottleneck layer's busy time, with pipeline fill/drain amortized into the
one-time start cost.  The coupled "insert job" of §5.1 (no decoupling) and
the no-predeploy ablation run on the same runtime, differing only in what
the computing process charges per batch.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Sequence, Union

from ..adm.schema import primary_key_of
from ..cluster.controller import Cluster
from ..errors import IngestionError, InjectedCrash, StreamingJoinError
from ..hyracks.connectors import HashPartition, OneToOne, RoundRobin
from ..hyracks.frame import DEFAULT_FRAME_CAPACITY, Frame
from ..hyracks.job import JobSpecification, OperatorDescriptor
from ..hyracks.operators import DatasetWriteSink, ListSource, ParseOperator
from ..hyracks.operators.sinks import CallbackSink
from ..hyracks.partition_holder import ActivePartitionHolder, PassivePartitionHolder
from ..runtime import (
    Advance,
    CANCELLED,
    Channel,
    FaultMetrics,
    IDLE,
    IntakeBuffer,
    RuntimeMetrics,
    Sequencer,
    Supervisor,
)
from ..sqlpp.analysis import dataset_references
from ..sqlpp.evaluator import EvaluationContext
from ..sqlpp.memo import EnrichmentMemo
from ..sqlpp.state_cache import StateCache
from ..storage.checkpoint import CheckpointStore, PartitionCursor, RunCheckpoint
from ..storage.dataset import hash_partition
from .adapter import ADAPTER_IDLE, FeedAdapter, drain_available
from .feed import (
    BatchStats,
    ComputingModel,
    FeedDefinition,
    FeedRunReport,
    Framework,
)
from .external import EnrichmentCoordinator
from .fabric import FeedSignals
from .policy import (
    DEFAULT_POLICY,
    ExternalFailureAction,
    FeedPolicy,
    SoftErrorAction,
    SoftErrorHandler,
    ensure_dead_letter_dataset,
)
from .udf_operator import UdfEvaluatorOperator, make_batch_invoker, make_invoker

#: the plan cache's cumulative columnar counters, snapshotted per run so
#: reports carry per-run deltas (the cache is registry-owned and shared
#: across feeds, like the state cache)
_VECTORIZATION_COUNTERS = (
    "vectorized_batches",
    "vectorized_records",
    "scalar_fallbacks",
)


def _plan_cache_snapshot(eval_ctx) -> Dict[str, int]:
    cache = eval_ctx.plan_cache
    return {name: getattr(cache, name) for name in _VECTORIZATION_COUNTERS}


def _apply_plan_cache_delta(report, eval_ctx, before: Dict[str, int]) -> None:
    cache = eval_ctx.plan_cache
    for name in _VECTORIZATION_COUNTERS:
        setattr(report, name, getattr(cache, name) - before[name])


class _SubBatch:
    """One slice of an oversized batch, dispatched to a pool worker.

    Slices share the parent batch's sequencer ``index``; the sequencer
    reassembles the ``of`` sub-results in ``sub`` order before the in-order
    release, so storage sees exactly the unsplit batch's output.
    """

    __slots__ = ("index", "sub", "of", "lists", "records")

    def __init__(self, index: int, sub: int, of: int, lists: List[List[dict]]):
        self.index = index
        self.sub = sub
        self.of = of
        self.lists = lists
        self.records = sum(len(p) for p in lists)

    def __repr__(self):
        return f"<SubBatch {self.index}.{self.sub}/{self.of} ({self.records}r)>"


def _split_batch(
    batch: List[List[dict]], max_records: int
) -> Optional[List[List[List[dict]]]]:
    """Slice an oversized batch into sub-batches of ≤ ``max_records``.

    Each per-node list is sliced proportionally, so concatenating the
    sub-batches in sub order recovers the original per-node lists exactly
    (record order preserved node-by-node).  Returns ``None`` when no split
    is warranted (disabled, small batch, or everything lands in one slice).
    """
    total = sum(len(p) for p in batch)
    if max_records <= 0 or total <= max_records:
        return None
    k = -(-total // max_records)  # ceil division
    subs: List[List[List[dict]]] = []
    for s in range(k):
        lists = [
            p[(len(p) * s) // k : (len(p) * (s + 1)) // k] for p in batch
        ]
        if any(lists):
            subs.append(lists)
    return subs if len(subs) > 1 else None


class _StorageLayer:
    """The storage job: active holders feeding per-node LSM writers.

    Performs the real dataset writes and accounts per-node storage busy
    time (store cost, log forces, cross-node transfer for records whose
    primary-key hash lands elsewhere).  In decoupled mode it also runs as
    a runtime process consuming per-batch work items from a channel, so
    its busy time overlaps the next computing job.
    """

    def __init__(self, cluster: Cluster, dataset, write_mode: str):
        self.cluster = cluster
        self.dataset = dataset
        self.write = dataset.insert if write_mode == "insert" else dataset.upsert
        self.node_busy: Dict[int, float] = {n: 0.0 for n in range(cluster.num_nodes)}
        self.records_stored = 0
        self.holders = [
            ActivePartitionHolder(f"storage-{dataset.name}", p, _NullWriter())
            for p in range(cluster.num_nodes)
        ]
        for holder in self.holders:
            cluster.holder_manager.register(holder)

    def store_batch(self, outputs: List[List[dict]]) -> float:
        """Write one computing job's output; returns this batch's max busy.

        ``outputs[p]`` is the enriched record list produced on node ``p``.
        """
        cost = self.cluster.cost_model
        n = self.cluster.num_nodes
        batch_busy: Dict[int, float] = {}
        touched = set()
        for producer_node, records in enumerate(outputs):
            if not records:
                continue
            self.holders[producer_node % n].push(Frame(records))
            for record in records:
                key = primary_key_of(record, self.dataset.primary_key)
                target = hash_partition(key, n)
                if target != producer_node % n:
                    batch_busy[producer_node % n] = (
                        batch_busy.get(producer_node % n, 0.0)
                        + cost.transfer_per_record
                    )
                self.write(record)
                self.records_stored += 1
                batch_busy[target] = (
                    batch_busy.get(target, 0.0) + cost.store_per_record
                )
                touched.add(target)
        for target in touched:
            batch_busy[target] = batch_busy.get(target, 0.0) + cost.log_flush_per_batch
        for node, seconds in batch_busy.items():
            self.node_busy[node] += seconds
        return max(batch_busy.values()) if batch_busy else 0.0

    def process(self, channel: Channel):
        """Runtime process: advance through queued per-batch write work."""
        while True:
            seconds = yield from channel.get()
            if seconds is None:
                break
            if seconds > 0:
                yield Advance(seconds)

    @property
    def max_busy(self) -> float:
        return max(self.node_busy.values())

    def close(self) -> None:
        for holder in self.holders:
            holder.close()
        self.cluster.holder_manager.unregister(f"storage-{self.dataset.name}")


class _NullWriter:
    def open(self):
        pass

    def next_frame(self, frame):
        pass

    def close(self):
        pass


class _IntakeLayer:
    """The intake job: adapter(s) + round-robin partitioner + holders.

    With ``num_partitions > 1`` the feed runs partitioned intake: each
    partition is its own intake actor driving its own adapter, pinned
    round-robin to an intake node, all merging into the shared holder set
    under one logical cursor (per-partition ``(partition, seq)``
    watermarks).  The single-partition feed keeps the historical
    round-robin-per-record node accounting bit-for-bit.
    """

    def __init__(
        self, cluster: Cluster, feed: FeedDefinition, num_partitions: int = 1
    ):
        self.cluster = cluster
        self.feed = feed
        self.num_partitions = num_partitions
        n = cluster.num_nodes
        self.intake_nodes = list(range(n)) if feed.balanced_intake else [0]
        self.node_busy: Dict[int, float] = {node: 0.0 for node in self.intake_nodes}
        #: per intake partition: its actor's accumulated busy seconds
        self.partition_busy: Dict[int, float] = {
            p: 0.0 for p in range(num_partitions)
        }
        self.holders = [
            PassivePartitionHolder(
                f"intake-{feed.name}", p, feed.intake_holder_capacity
            )
            for p in range(n)
        ]
        for holder in self.holders:
            cluster.holder_manager.register(holder)
        self._rr = 0
        self._intake_rr = 0
        self.records_received = 0

    def _receive(self, chunk: List[dict], partition: int = 0):
        """Account one chunk's receive/fan-out work; returns framed output.

        Returns ``(target, frame)`` pairs in deposit order: holder ``p``
        lives on node ``p``, so records landing elsewhere charge a
        transfer to the receiving intake node.

        Partitioned intake pins each partition's work to one intake node
        (partitions map round-robin onto the feed's intake nodes) and
        stamps each envelope with its partition for cursor tracking; the
        single-partition path is unchanged.
        """
        cost = self.cluster.cost_model
        n = self.cluster.num_nodes
        buffers: List[List[dict]] = [[] for _ in range(n)]
        if self.num_partitions > 1:
            pinned = self.intake_nodes[partition % len(self.intake_nodes)]
            for envelope in chunk:
                envelope["partition"] = partition
                per = cost.receive_per_record + cost.intake_fanout_per_record
                target = self._rr % n
                self._rr += 1
                if target != pinned:  # holder p lives on node p
                    per += cost.transfer_per_record
                self.node_busy[pinned] += per
                self.partition_busy[partition] += per
                buffers[target].append(envelope)
                self.records_received += 1
        else:
            for envelope in chunk:
                intake_node = self.intake_nodes[
                    self._intake_rr % len(self.intake_nodes)
                ]
                self._intake_rr += 1
                self.node_busy[intake_node] += (
                    cost.receive_per_record + cost.intake_fanout_per_record
                )
                target = self._rr % n
                self._rr += 1
                if target != intake_node:  # holder p lives on node p
                    self.node_busy[intake_node] += cost.transfer_per_record
                buffers[target].append(envelope)
                self.records_received += 1
        frames = []
        for target, buffered in enumerate(buffers):
            for start in range(0, len(buffered), DEFAULT_FRAME_CAPACITY):
                frames.append(
                    (target, Frame(buffered[start : start + DEFAULT_FRAME_CAPACITY]))
                )
        return frames

    def make_body(
        self,
        adapter: FeedAdapter,
        buffer: IntakeBuffer,
        chunk_size: int,
        policy: FeedPolicy,
        faults: FaultMetrics,
        partition: int = 0,
        shared: Optional[Dict[str, object]] = None,
        resume_from=None,
    ):
        """Build the intake actor's restartable body factory.

        The returned factory is invoked once for the first run and once
        per supervisor restart; drawn-but-undelivered envelopes and frames
        live in closure state, so a crash mid-deposit replays them instead
        of losing them (at-least-once — duplicates resolve downstream via
        primary-key upsert).

        ``buffer.put`` suspends this process (accounted as *blocked*) while
        the target holder is full — backpressure propagates to the adapter
        instead of force-appending past the holder's bound.  An idle-but-
        open adapter (a :class:`QueueAdapter` drained before ``end()``)
        surfaces as accounted idle time, bounded by the policy's
        ``adapter_idle_timeout_seconds``.

        An :class:`~repro.runtime.faults.AdapterFailAt` in the fault plan
        kills the adapter after it has drawn that many envelopes: the
        source is closed and the intake actor crashes; on the supervisor's
        restart the adapter is re-opened from its resume cursor
        (:meth:`~repro.ingestion.adapter.FeedAdapter.resume_position`), so
        envelopes already drawn (held in closure state) are never drawn
        twice and nothing after the cursor is skipped.

        ``partition`` names this actor's intake partition; ``shared`` is
        the per-run dict coordinating the partition actors (open-actor
        count so the *last* finisher ends the buffer, the run-wide set of
        consumed adapter faults, and the per-partition durable cursor log
        the checkpoint commits consume).  ``resume_from`` re-opens a fresh
        adapter at a durable cursor (``resume_run``) — distinct from the
        in-process re-open after an adapter death, which resumes from the
        live ``resume_position()``.
        """
        plan = buffer.runtime.fault_plan
        if shared is None:
            shared = {"open": 1, "faults_consumed": set(), "cursor_log": None}
        cursor_log = shared.get("cursor_log")
        state = {
            # only pass resume_from when actually resuming: adapter
            # subclasses predating durable restart may not accept it
            "source": (
                adapter.envelopes(resume_from=resume_from)
                if resume_from is not None
                else adapter.envelopes()
            ),
            "drawn": 0,  # envelopes drawn over the adapter's lifetime
            "exhausted": False,
            "advanced": 0.0,
            "chunk": None,  # envelopes drawn but not yet framed
            "pending": None,  # (target, frame) pairs not yet delivered
            "idle": 0.0,
            "ended": False,
        }
        poll = policy.adapter_idle_poll_seconds
        timeout = policy.adapter_idle_timeout_seconds

        def due_adapter_fault():
            if plan is None:
                return None
            for index, fault in plan.adapter_failures_indexed():
                if index in shared["faults_consumed"]:
                    continue
                if fault.partition is not None and fault.partition != partition:
                    continue
                if (
                    getattr(fault, "feed", None) is not None
                    and fault.feed != self.feed.name
                ):
                    continue
                if state["drawn"] >= fault.after_records:
                    shared["faults_consumed"].add(index)
                    return fault
            return None

        def body():
            if state["source"] is None:
                # restarted after an adapter death: re-open from the cursor
                state["source"] = adapter.envelopes(
                    resume_from=adapter.resume_position()
                )
                faults.adapter_reopens += 1
            source = state["source"]
            while True:
                if state["pending"] is None:
                    if state["exhausted"]:
                        break
                    if state["chunk"] is None:
                        state["chunk"] = []
                    chunk = state["chunk"]
                    while len(chunk) < chunk_size:
                        fault = due_adapter_fault()
                        if fault is not None:
                            # the source died mid-fetch: drop the iterator,
                            # release its resources, and crash this actor —
                            # the supervisor restarts it and the re-opened
                            # source resumes from the cursor
                            state["source"] = None
                            faults.adapter_crashes += 1
                            adapter.close()
                            raise InjectedCrash(fault)
                        try:
                            item = next(source)
                        except StopIteration:
                            state["exhausted"] = True
                            break
                        if item is ADAPTER_IDLE:
                            if chunk:
                                break  # deliver what we have before idling
                            if timeout is not None and state["idle"] >= timeout:
                                faults.idle_timeouts += 1
                                state["exhausted"] = True
                                break
                            state["idle"] += poll
                            yield Advance(poll, state=IDLE)
                            continue
                        state["idle"] = 0.0
                        state["drawn"] += 1
                        chunk.append(item)
                    if not chunk:
                        if state["exhausted"]:
                            break
                        continue
                    frames = self._receive(chunk, partition)
                    if cursor_log is not None:
                        # durable-resume hint: after this chunk is fully
                        # deposited, a restart may re-open the adapter here
                        cursor_log[partition].append(
                            (
                                max(e["seq"] for e in chunk),
                                adapter.resume_position(),
                            )
                        )
                    state["chunk"] = None
                    # Stash undelivered frames *before* consuming sim time:
                    # a crash from here on replays them.
                    state["pending"] = list(frames)
                    # A partitioned actor advances by its own partition's
                    # busy time (actors overlap); the single actor keeps
                    # the historical max-over-intake-nodes accounting.
                    busy_now = (
                        self.partition_busy[partition]
                        if self.num_partitions > 1
                        else self.max_busy
                    )
                    delta = busy_now - state["advanced"]
                    state["advanced"] = busy_now
                    if delta > 0:
                        yield Advance(delta)
                pending = state["pending"]
                while pending:
                    target, frame = pending[0]
                    yield from buffer.put(target, frame)
                    pending.pop(0)
                state["pending"] = None
                # Batch boundary: yield the slice so a waiting computing
                # process evaluates this chunk's batch before the adapter
                # draws (and side-effects) the next chunk.
                yield Advance(0.0)
            if not state["ended"]:
                state["ended"] = True
                shared["open"] -= 1
                if shared["open"] == 0:
                    # last partition standing ends the shared buffer
                    buffer.end()

        return body

    @property
    def queued(self) -> int:
        return sum(holder.queued_records for holder in self.holders)

    @property
    def drained(self) -> bool:
        return all(holder.drained for holder in self.holders)

    @property
    def max_busy(self) -> float:
        return max(self.node_busy.values())

    def close(self) -> None:
        self.cluster.holder_manager.unregister(f"intake-{self.feed.name}")


def _check_stateful_support(feed: FeedDefinition, registry, catalog) -> None:
    """Static framework: reject stateful SQL++ UDFs unless Model-3 opt-in."""
    for fn in feed.functions:
        if fn.is_java:
            continue
        udf = registry.get(fn.name)
        if not udf.stateful:
            continue
        if feed.computing_model is not ComputingModel.STREAM:
            raise IngestionError(
                f"the static ingestion pipeline cannot evaluate stateful "
                f"SQL++ UDF {fn.name!r} (paper §4.3.4); use the dynamic "
                f"framework or opt into the stream-model ablation"
            )
        # Model 3 explicitly requested: it only works while the build side
        # fits in memory (§4.3.4 case 1 vs case 2).
        refs = dataset_references(udf.definition.body, set(catalog))
        for name in refs:
            size = len(catalog[name])
            if size > feed.stream_memory_budget:
                raise StreamingJoinError(
                    f"stream-model evaluation of {fn.name!r}: reference "
                    f"dataset {name!r} ({size} records) exceeds the join "
                    f"memory budget ({feed.stream_memory_budget}); spilled "
                    f"partitions can never be re-joined with an unbounded feed"
                )


class StaticIngestionPipeline:
    """The old AsterixDB feed: one continuous job, stream-model UDFs."""

    def __init__(self, cluster: Cluster, catalog: Dict[str, object], registry=None):
        self.cluster = cluster
        self.catalog = catalog
        self.registry = registry

    def _prewarm_stream_state(self, feed: FeedDefinition, eval_ctx) -> None:
        """Freeze stateful UDF inputs at feed-start time.

        SQL++ UDFs get their referenced datasets snapshotted into the scan
        cache (the hash-join build source); Java UDFs get their instances
        created and resource files read.
        """
        from ..sqlpp.evaluator import Evaluator

        evaluator = Evaluator(eval_ctx)
        for fn in feed.functions:
            if fn.is_java:
                descriptor = self.registry.get_java(fn.library or "udflib", fn.name)
                key = ("java_instance", descriptor.qualified_name)
                if key not in eval_ctx.batch_cache:
                    instance = descriptor.instantiate()
                    eval_ctx.batch_cache[key] = instance
                    eval_ctx.replicated_meter.records_scanned += (
                        instance.resource_lines_loaded
                    )
            else:
                udf = self.registry.get(fn.name)
                refs = dataset_references(udf.definition.body, set(self.catalog))
                for name in sorted(refs):
                    evaluator._scan_dataset(self.catalog[name])

    def run(self, feed: FeedDefinition, adapter: FeedAdapter) -> FeedRunReport:
        try:
            return self._run(feed, adapter)
        finally:
            adapter.close()

    def _run(self, feed: FeedDefinition, adapter: FeedAdapter) -> FeedRunReport:
        if feed.functions and self.registry is None:
            raise IngestionError("a function registry is required for UDF feeds")
        if feed.external_enrichers:
            raise IngestionError(
                "external enrichers need the dynamic framework: the static "
                "pipeline has no per-batch coordinator to route probe keys "
                "through"
            )
        if feed.functions:
            _check_stateful_support(feed, self.registry, self.catalog)
        dataset = self.catalog[feed.target_dataset]
        cluster = self.cluster
        n = cluster.num_nodes
        cost = cluster.cost_model

        policy = feed.policy or DEFAULT_POLICY
        faults = FaultMetrics()
        dead_letters = None
        if policy.on_soft_error is SoftErrorAction.DEAD_LETTER:
            dead_letters = ensure_dead_letter_dataset(
                self.catalog, feed.name, policy, num_partitions=n
            )
        soft_errors = SoftErrorHandler(feed.name, policy, faults, dead_letters)

        # One evaluation context for the whole feed: the stream model.
        # Stateful state (reference-data snapshots, Java resource files) is
        # initialized NOW, at feed start, before any data arrives — updates
        # made while the feed runs are never observed (§4.3.4 / §7.2).
        eval_ctx = EvaluationContext(
            self.catalog,
            functions=self.registry,
            reference_work_scale=feed.reference_work_scale,
        )
        eval_ctx.cluster_nodes = n
        invoker = make_invoker(feed.functions, self.registry) if feed.functions else None
        batch_invoker = (
            make_batch_invoker(feed.functions, self.registry)
            if feed.functions
            else None
        )
        self._prewarm_stream_state(feed, eval_ctx)

        # Synchronous drain: an idle-but-open adapter contributes what it
        # has *now* instead of raising (or spinning) mid-job.
        envelopes = drain_available(adapter)
        intake_nodes = list(range(n)) if feed.balanced_intake else [0]
        slices: List[List[dict]] = [[] for _ in intake_nodes]
        for i, envelope in enumerate(envelopes):
            slices[i % len(intake_nodes)].append(envelope)

        spec = JobSpecification(f"feed-{feed.name}-static")
        src = spec.add_operator(
            OperatorDescriptor(
                "adapter",
                lambda ctx: ListSource(
                    ctx,
                    partition_lists=slices,
                    per_record_cost=cost.receive_per_record,
                ),
                partitions=len(intake_nodes),
                nodes=intake_nodes,
            )
        )
        parse = spec.add_operator(
            OperatorDescriptor(
                "parser",
                lambda ctx: ParseOperator(
                    ctx, feed.datatype, soft_errors=soft_errors
                ),
                partitions=len(intake_nodes),
                nodes=intake_nodes,
            )
        )
        spec.connect(src, parse, OneToOne())
        upstream = parse
        if invoker is not None:
            udf = spec.add_operator(
                OperatorDescriptor(
                    "udf-evaluator",
                    lambda ctx: UdfEvaluatorOperator(
                        ctx,
                        eval_ctx,
                        invoker,
                        soft_errors=soft_errors,
                        batch_invoker=batch_invoker,
                    ),
                    partitions=n,
                )
            )
            spec.connect(upstream, udf, RoundRobin())
            upstream = udf
        sink = spec.add_operator(
            OperatorDescriptor(
                "storage",
                lambda ctx: DatasetWriteSink(ctx, dataset, feed.write_mode),
                partitions=n,
            )
        )
        spec.connect(
            upstream,
            sink,
            HashPartition(lambda r: primary_key_of(r, dataset.primary_key)),
        )

        plan_cache_before = _plan_cache_snapshot(eval_ctx)
        result = cluster.controller.run_job(spec)
        shared_seconds = eval_ctx.shared_meter.charge(cost)
        replicated_seconds = eval_ctx.replicated_meter.charge(cost)
        busy = dict(result.node_busy_seconds)
        for node in busy:
            busy[node] += shared_seconds / n + replicated_seconds
        teardown = (
            result.makespan_seconds
            - result.startup_seconds
            - result.critical_node_seconds
        )
        makespan = result.startup_seconds + max(busy.values()) + teardown
        intake_busy = max(
            result.per_operator_busy.get("adapter", 0.0)
            + result.per_operator_busy.get("parser", 0.0),
            0.0,
        ) / max(len(intake_nodes), 1)

        # The static feed is one continuous job: a single runtime process
        # walking startup -> critical-path work -> teardown on the shared
        # cluster clock, so static and dynamic runs share one execution
        # path and one metrics format.
        runtime = cluster.new_runtime(f"feed-{feed.name}-static")
        run_name = f"feed-{feed.name}-static"

        def feed_process():
            yield Advance(result.startup_seconds)
            yield Advance(max(busy.values()))
            if teardown > 0:
                yield Advance(teardown)

        runtime.spawn(run_name, feed_process(), layer="feed")
        cluster.controller.begin_run(run_name)
        try:
            runtime.run()
        finally:
            cluster.controller.finish_run(run_name)

        report = FeedRunReport(
            feed_name=feed.name,
            framework=Framework.STATIC.value,
            records_ingested=len(envelopes),
            records_stored=result.records_out,
            simulated_seconds=makespan,
            intake_seconds=intake_busy,
            computing_seconds=result.per_operator_busy.get("udf-evaluator", 0.0) / n,
            storage_seconds=result.per_operator_busy.get("storage", 0.0) / n,
            num_computing_jobs=1,
            # The stream model builds state once per feed; over the paper's
            # millions of records that cost amortizes to nothing, so it is
            # excluded from steady-state throughput along with job startup.
            fixed_start_seconds=result.startup_seconds
            + teardown
            + shared_seconds / n
            + replicated_seconds,
        )
        _apply_plan_cache_delta(report, eval_ctx, plan_cache_before)
        report.runtime = RuntimeMetrics.from_runtime(
            runtime,
            faults=faults,
            vectorized_batches=report.vectorized_batches,
            vectorized_records=report.vectorized_records,
            scalar_fallbacks=report.scalar_fallbacks,
        )
        return report


class ActiveFeedManager:
    """The AFM (§6.1): tracks active feeds, invokes computing jobs."""

    def __init__(self, cluster: Cluster):
        self.cluster = cluster
        self.active_feeds: Dict[str, str] = {}  # feed name -> deployed job id
        self.jobs_invoked: Dict[str, int] = {}

    def register_feed(self, feed_name: str, deployed_job_id: str) -> None:
        if feed_name in self.active_feeds:
            raise IngestionError(f"feed {feed_name!r} is already active")
        self.active_feeds[feed_name] = deployed_job_id
        self.jobs_invoked.setdefault(feed_name, 0)

    def invoke_computing_job(self, feed_name: str, params, predeployed=True):
        if feed_name not in self.active_feeds:
            raise IngestionError(f"feed {feed_name!r} is not active")
        job_id = self.active_feeds[feed_name]
        self.jobs_invoked[feed_name] += 1
        return self.cluster.controller.invoke(job_id, params)

    def deregister_feed(self, feed_name: str) -> None:
        job_id = self.active_feeds.pop(feed_name, None)
        if job_id is not None:
            self.cluster.controller.undeploy(job_id)


def _normalize_adapters(
    adapter: Union[FeedAdapter, Sequence[FeedAdapter]],
    policy: FeedPolicy,
) -> List[FeedAdapter]:
    """Resolve the run's intake partition adapters.

    A sequence of adapters attaches one adapter per intake partition (the
    multi-queue form of partitioned intake).  A single adapter with
    ``policy.intake_partitions > 1`` is range-split when it supports it
    (a :class:`~repro.ingestion.adapter.FileAdapter`); adapters without a
    ``split`` must be passed pre-partitioned.
    """
    if isinstance(adapter, FeedAdapter):
        parts = policy.intake_partitions
        if parts <= 1:
            return [adapter]
        split = getattr(adapter, "split", None)
        if split is None:
            raise IngestionError(
                f"intake_partitions={parts} needs a range-splittable "
                f"adapter (a FileAdapter) or an explicit sequence of one "
                f"adapter per partition; {type(adapter).__name__} has no "
                f"split()"
            )
        return split(parts)
    adapters = list(adapter)
    if not adapters:
        raise IngestionError("at least one intake adapter is required")
    if policy.intake_partitions > 1 and len(adapters) != policy.intake_partitions:
        raise IngestionError(
            f"policy asks for intake_partitions={policy.intake_partitions} "
            f"but {len(adapters)} adapters were attached"
        )
    return adapters


class FeedRunHandle:
    """A launched-but-not-yet-driven dynamic feed run.

    :meth:`DynamicIngestionPipeline.launch` sets the run up completely —
    layers built, computing job predeployed, processes spawned on the
    runtime — and returns this handle instead of driving the clock, so a
    caller can launch *several* feeds onto one shared runtime and run
    them as a fleet (:meth:`AsterixLite.start_feeds`).  The driving
    protocol, in order: ``runtime.run()`` (inside the controller's
    begin/finish bracket), :meth:`collect_faults`, :meth:`finalize`, and
    :meth:`cleanup` in a ``finally``.  :meth:`DynamicIngestionPipeline.run`
    is exactly this protocol for a single feed.
    """

    __slots__ = (
        "feed_name",
        "run_name",
        "runtime",
        "owns_runtime",
        "finalize",
        "collect_faults",
        "cleanup",
    )


class DynamicIngestionPipeline:
    """The paper's layered ingestion framework."""

    def __init__(
        self,
        cluster: Cluster,
        catalog: Dict[str, object],
        registry=None,
        afm: Optional[ActiveFeedManager] = None,
    ):
        self.cluster = cluster
        self.catalog = catalog
        self.registry = registry
        self.afm = afm or ActiveFeedManager(cluster)

    def run(
        self,
        feed: FeedDefinition,
        adapter: Union[FeedAdapter, Sequence[FeedAdapter]],
        update_client=None,
        predeploy: bool = True,
        decoupled: bool = True,
        checkpoint: Optional[CheckpointStore] = None,
        resume: bool = False,
    ) -> FeedRunReport:
        """Drive the feed to completion; returns the run report.

        ``adapter`` is one adapter (range-split into
        ``policy.intake_partitions`` partitions when > 1) or a sequence of
        adapters, one per intake partition.

        ``update_client`` (a :class:`ReferenceUpdateClient`) is advanced by
        each batch's simulated duration — the §7.3 experiment.
        ``predeploy=False`` and ``decoupled=False`` are the §5.1/§5.2
        ablations; both run on the same discrete-event runtime.

        ``checkpoint`` (a :class:`~repro.storage.CheckpointStore`) makes
        the run durably restartable: each storage commit persists the
        per-partition intake cursors and acked-batch high-water.  With
        ``resume=True`` an existing checkpoint re-opens each partition's
        adapter at its durable cursor — zero acked loss, the un-acked tail
        replayed and deduped by pk-upsert.
        """
        handle = self.launch(
            feed,
            adapter,
            update_client=update_client,
            predeploy=predeploy,
            decoupled=decoupled,
            checkpoint=checkpoint,
            resume=resume,
        )
        try:
            self.cluster.controller.begin_run(handle.run_name)
            try:
                elapsed = handle.runtime.run()
            finally:
                self.cluster.controller.finish_run(handle.run_name)
                handle.collect_faults()
            return handle.finalize(elapsed)
        finally:
            handle.cleanup()

    def launch(
        self,
        feed: FeedDefinition,
        adapter: Union[FeedAdapter, Sequence[FeedAdapter]],
        update_client=None,
        predeploy: bool = True,
        decoupled: bool = True,
        checkpoint: Optional[CheckpointStore] = None,
        resume: bool = False,
        runtime=None,
        fabric=None,
    ) -> FeedRunHandle:
        """Set the run up without driving the clock; returns a handle.

        ``runtime`` attaches the feed's processes to a caller-owned
        (shared, multi-feed) runtime instead of a fresh private one; the
        caller is then responsible for installing the fleet's (merged)
        fault plan before launching and for driving ``runtime.run()``
        itself.  ``fabric`` enrolls the feed's elastic worker pool — and,
        when the fabric carries a memory governor, private
        state-cache/memo tenants — with a
        :class:`~repro.ingestion.fabric.FeedFabric`.  Both default to
        ``None``: the solo path (:meth:`run`) is bit-for-bit the
        historical single-feed pipeline.
        """
        if feed.functions and self.registry is None:
            raise IngestionError("a function registry is required for UDF feeds")
        dataset = self.catalog[feed.target_dataset]
        cluster = self.cluster
        n = cluster.num_nodes

        batch_size = feed.batch_size
        if feed.computing_model is ComputingModel.PER_RECORD:
            batch_size = 1

        policy = feed.policy or DEFAULT_POLICY
        adapters = _normalize_adapters(adapter, policy)
        num_partitions = len(adapters)
        resume_cursors: Dict[int, object] = {}
        base_checkpoint = None
        if checkpoint is not None and resume:
            base_checkpoint = checkpoint.load(feed.name)
            if base_checkpoint is not None:
                if base_checkpoint.intake_partitions != num_partitions:
                    raise IngestionError(
                        f"checkpoint for feed {feed.name!r} was written "
                        f"with {base_checkpoint.intake_partitions} intake "
                        f"partition(s); this run attached {num_partitions}"
                    )
                resume_cursors = {
                    p: c.resume for p, c in base_checkpoint.cursors.items()
                }
        faults = FaultMetrics()
        dead_letters = None
        if policy.on_soft_error is SoftErrorAction.DEAD_LETTER or (
            feed.external_enrichers
            and policy.external_on_failure is ExternalFailureAction.DEAD_LETTER
        ):
            dead_letters = ensure_dead_letter_dataset(
                self.catalog, feed.name, policy, num_partitions=n
            )
        soft_errors = SoftErrorHandler(feed.name, policy, faults, dead_letters)
        run_name = f"feed-{feed.name}"
        governed = (
            fabric is not None
            and fabric.governor is not None
            and self.registry is not None
        )
        scoped_caches: List[StateCache] = []
        memo = None
        if policy.enrichment_memo_bytes > 0 and self.registry is not None:
            if governed:
                # Governed tenant: a *private* memo whose budget the
                # fabric's memory governor assigns (and re-assigns at batch
                # boundaries) instead of the policy's fixed byte count.
                # Adopted by the registry so DDL / replace_sqlpp clear it
                # exactly like the shared singleton.
                memo = EnrichmentMemo(label=f"{run_name}.memo")
                self.registry.adopt_cache(memo)
                scoped_caches.append(memo)
                fabric.register_cache(run_name, memo, policy)
            else:
                # Opt-in cross-batch key-level result reuse (L2 memo):
                # owned by the registry (same sharing/invalidations as the
                # state cache), bounded by the policy's byte budget, and
                # handed to both the local probe paths (via eval_ctx) and
                # the external coordinator.
                memo = self.registry.enrichment_memo
                memo.configure(policy.enrichment_memo_bytes)
        coordinator = None
        if feed.external_enrichers:
            # One coordinator per run: breakers and rate limiters carry
            # state across batches (and across worker-crash replays).
            coordinator = EnrichmentCoordinator(
                feed.external_enrichers,
                policy,
                fault_plan=feed.fault_plan,
                dead_letters=dead_letters,
                feed_name=feed.name,
                primary_key=dataset.primary_key,
                memo=memo,
            )

        intake = _IntakeLayer(cluster, feed, num_partitions)
        storage = _StorageLayer(cluster, dataset, feed.write_mode)
        eval_ctx = EvaluationContext(
            self.catalog,
            functions=self.registry,
            reference_work_scale=feed.reference_work_scale,
        )
        eval_ctx.cluster_nodes = n
        eval_ctx.memo = memo
        if policy.state_cache_bytes > 0 and self.registry is not None:
            if governed:
                # Governed tenant: see the memo block above.
                cache = StateCache(label=f"{run_name}.state")
                self.registry.adopt_cache(cache)
                scoped_caches.append(cache)
                fabric.register_cache(run_name, cache, policy)
                eval_ctx.state_cache = cache
            else:
                # Opt-in cross-batch build-state reuse: the registry-owned
                # cache is shared by every worker (and every feed) over
                # this registry; the policy's budget bounds its resident
                # bytes.
                self.registry.state_cache.configure(policy.state_cache_bytes)
                eval_ctx.state_cache = self.registry.state_cache
        invoker = (
            make_invoker(feed.functions, self.registry) if feed.functions else None
        )
        batch_invoker = (
            make_batch_invoker(feed.functions, self.registry)
            if feed.functions
            else None
        )

        # One CallbackSink output slot, swapped per invocation: concurrent
        # workers each install their own buffer right before invoking (an
        # invocation is synchronous within one worker resume, so the slot
        # is never shared across two in-flight invokes).
        collect_slot: Dict[str, List[List[dict]]] = {
            "outputs": [[] for _ in range(n)]
        }

        def collect(partition: int, frame: Frame) -> None:
            collect_slot["outputs"][partition].extend(frame.records)

        def spec_builder(partition_lists: List[List[dict]]) -> JobSpecification:
            spec = JobSpecification(f"feed-{feed.name}-computing")
            src = spec.add_operator(
                OperatorDescriptor(
                    "collector",
                    lambda ctx: ListSource(ctx, partition_lists=partition_lists),
                    partitions=n,
                )
            )
            parse = spec.add_operator(
                OperatorDescriptor(
                    "parser",
                    lambda ctx: ParseOperator(
                        ctx, feed.datatype, soft_errors=soft_errors
                    ),
                    partitions=n,
                )
            )
            spec.connect(src, parse, OneToOne())
            upstream = parse
            if invoker is not None:
                udf = spec.add_operator(
                    OperatorDescriptor(
                        "udf-evaluator",
                        lambda ctx: UdfEvaluatorOperator(
                            ctx,
                            eval_ctx,
                            invoker,
                            soft_errors=soft_errors,
                            batch_invoker=batch_invoker,
                        ),
                        partitions=n,
                    )
                )
                spec.connect(upstream, udf, OneToOne())
                upstream = udf
            sink = spec.add_operator(
                OperatorDescriptor(
                    "feed-pipeline-sink",
                    lambda ctx: CallbackSink(ctx, collect),
                    partitions=n,
                )
            )
            spec.connect(upstream, sink, OneToOne())
            return spec

        job_id = cluster.controller.deploy(f"feed-{feed.name}", spec_builder)
        self.afm.register_feed(feed.name, job_id)

        def cleanup():
            # a failing UDF or adapter must not leak the feed's runtime
            # state: the fabric/governor tenancy, the AFM entry, the
            # predeployed job, the registered intake/storage partition
            # holders, or the adapter's external resources (e.g. a
            # FileAdapter's handle)
            if fabric is not None:
                fabric.deregister_feed(run_name)
            if self.registry is not None:
                for cache in scoped_caches:
                    self.registry.release_cache(cache)
            self.afm.deregister_feed(feed.name)
            intake.close()
            storage.close()
            for part_adapter in adapters:
                part_adapter.close()

        try:
            return self._launch(
                feed, adapters, intake, storage, eval_ctx, batch_size,
                update_client, predeploy, decoupled, spec_builder,
                collect_slot, policy, faults, soft_errors,
                checkpoint, resume_cursors, base_checkpoint,
                coordinator=coordinator, runtime=runtime, fabric=fabric,
                cleanup=cleanup,
            )
        except BaseException:
            cleanup()
            raise

    def _launch(
        self,
        feed: FeedDefinition,
        adapters: List[FeedAdapter],
        intake: "_IntakeLayer",
        storage: "_StorageLayer",
        eval_ctx,
        batch_size: int,
        update_client,
        predeploy: bool,
        decoupled: bool,
        spec_builder,
        collect_slot: Dict[str, List[List[dict]]],
        policy: FeedPolicy,
        faults: FaultMetrics,
        soft_errors: SoftErrorHandler,
        checkpoint: Optional[CheckpointStore] = None,
        resume_cursors: Optional[Dict[int, object]] = None,
        base_checkpoint: Optional[RunCheckpoint] = None,
        coordinator: Optional[EnrichmentCoordinator] = None,
        runtime=None,
        fabric=None,
        cleanup=None,
    ) -> FeedRunHandle:
        cluster = self.cluster
        n = cluster.num_nodes
        cost = cluster.cost_model
        num_partitions = intake.num_partitions
        resume_cursors = resume_cursors or {}
        track = checkpoint is not None
        report = FeedRunReport(
            feed_name=feed.name,
            framework=Framework.DYNAMIC.value,
            records_ingested=0,
            records_stored=0,
            simulated_seconds=0.0,
            intake_seconds=0.0,
            computing_seconds=0.0,
            storage_seconds=0.0,
        )

        # Per-run delta baseline for the shared (registry-owned, possibly
        # multi-feed) state cache's cumulative counters.
        state_cache = eval_ctx.state_cache
        state_cache_before = (
            state_cache.stats() if state_cache is not None else None
        )
        # And for the shared key-level enrichment memo (covers all three
        # probe paths — scalar, columnar, external — through one instance).
        memo = eval_ctx.memo
        memo_before = memo.stats() if memo is not None else None
        # Same convention for the shared plan cache's columnar counters.
        plan_cache_before = _plan_cache_snapshot(eval_ctx)
        # On a shared multi-feed runtime a start/end registry delta would
        # interleave every tenant's batches; the UDF operator additionally
        # tallies this feed's own share per invocation into its context.
        eval_ctx.columnar_tally = {
            name: 0 for name in _VECTORIZATION_COUNTERS
        }

        run_name = f"feed-{feed.name}"
        owns_runtime = runtime is None
        if owns_runtime:
            runtime = cluster.new_runtime(run_name)
            runtime.install_fault_plan(feed.fault_plan)
        # else: a shared multi-feed runtime arrives with the fleet's
        # merged fault plan already installed by the orchestrator
        buffer = IntakeBuffer(
            runtime,
            intake.holders,
            congestion=policy.on_congestion.value,
            throttle_seconds=policy.throttle_seconds,
            throttle_max_seconds=policy.throttle_max_seconds,
            faults=faults,
        )
        storage_channel = (
            Channel(runtime, feed.storage_queue_capacity, name=f"{run_name}.storage")
            if decoupled
            else None
        )
        state = {"computing_total": 0.0, "coupled_extra": 0.0}
        batch_latencies: List[float] = []

        # ------------------------------------------------ computing worker pool
        workers_min = policy.min_computing_workers
        workers_max = policy.max_computing_workers
        elastic = policy.elastic_enabled
        #: the order-preserving hand-off in front of storage: workers
        #: complete batches out of index order, the sequencer releases the
        #: real writes (and the storage channel items) in index order, so
        #: pk-upsert order / acked guarantees / dead-letter provenance are
        #: byte-identical to the single-actor pipeline
        def merge_subbatch(parts: List[List[List[dict]]]) -> List[List[dict]]:
            # Per-node concatenation in sub order recovers exactly the
            # unsplit batch's per-node outputs (see _split_batch).
            return [
                [record for part in parts for record in part[node]]
                for node in range(n)
            ]

        sequencer = Sequencer(
            storage.store_batch, storage_channel, merge=merge_subbatch
        )
        pool = {
            "assign": 0,  # next batch index to hand to a worker
            "spawned": 0,  # workers ever created (names stay unique)
            "running": 0,
            "peak": 0,
            "shrink": 0,  # outstanding scale-down tokens
            "timeline": [],  # (sim_seconds, pool size) steps
            "scale_ups": 0,
            "scale_downs": 0,
            "worker_busy": {},  # per-worker aggregate busy seconds
            "first_busy": None,  # clock at the first batch's invoke
            "last_busy": 0.0,  # clock after the last batch's work
            "ended": False,
            "subqueue": deque(),  # pending _SubBatch slices for idle peers
            "subbatches": 0,  # sub-batch dispatches (counts the first slice)
            "cursor": {},  # per-partition max claimed seq (checkpointing)
            "marks": {},  # batch index -> cursor snapshot at claim time
            "resume_cursors": {},  # per-partition durable re-open hint
            "checkpoint_commits": 0,
        }
        #: coordination between the intake partition actors: the last one
        #: to finish ends the shared buffer; adapter faults are consumed
        #: run-wide; each partition logs (max seq, resume cursor) hints the
        #: checkpoint commits consume
        shared = {
            "open": num_partitions,
            "faults_consumed": set(),
            "cursor_log": (
                {p: [] for p in range(num_partitions)} if track else None
            ),
        }
        if base_checkpoint is not None:
            # partitions that receive no new records keep their durable
            # position instead of regressing to "nothing acked"
            for p, cursor in base_checkpoint.cursors.items():
                pool["cursor"][p] = cursor.acked_seq
                pool["resume_cursors"][p] = cursor.resume
        base_acked_batches = (
            base_checkpoint.acked_batches if base_checkpoint is not None else 0
        )

        max_sub = policy.max_subbatch_records
        split_enabled = max_sub > 0

        def claim_subbatch():
            if pool["subqueue"]:
                return pool["subqueue"].popleft()
            return None

        steal = claim_subbatch if split_enabled else None

        def note_claimed(index: int, batch: List[List[dict]]) -> None:
            """Advance the logical cursor; snapshot it for ``index``.

            Batch indices are claimed in order under the deterministic
            scheduler, so the snapshot taken when ``index`` is claimed
            covers exactly batches ``0..index`` — releasing ``index``
            makes that snapshot the durable acked watermark.
            """
            cursor = pool["cursor"]
            for records in batch:
                for envelope in records:
                    p = envelope.get("partition", 0)
                    seq = envelope.get("seq", -1)
                    if seq > cursor.get(p, -1):
                        cursor[p] = seq
            pool["marks"][index] = dict(cursor)

        def commit_checkpoint(complete: bool = False) -> None:
            """Persist cursors covering everything released so far."""
            watermark = sequencer.next_index - 1
            mark = pool["marks"].get(watermark)
            if mark is None:
                if not complete:
                    return
                mark = pool["cursor"]
            cursors = {}
            for p in range(num_partitions):
                acked = mark.get(p, -1)
                log = shared["cursor_log"][p]
                # the newest fully-deposited chunk at/below the watermark
                # becomes the partition's durable re-open point; the gap up
                # to the watermark replays and dedupes via pk-upsert
                while log and log[0][0] <= acked:
                    pool["resume_cursors"][p] = log.pop(0)[1]
                cursors[p] = PartitionCursor(
                    acked_seq=acked, resume=pool["resume_cursors"].get(p)
                )
            checkpoint.commit(
                RunCheckpoint(
                    feed=feed.name,
                    intake_partitions=num_partitions,
                    cursors=cursors,
                    acked_batches=base_acked_batches + sequencer.next_index,
                    records_stored=storage.records_stored,
                    complete=complete,
                )
            )
            pool["checkpoint_commits"] += 1

        def worker_loop(worker_name: str, inflight: Dict[str, object]):
            """One pool worker's AFM loop: collect, invoke, sequence.

            ``inflight`` is the worker's un-acked (index, batch) pair: set
            when pulled from the intake buffer, cleared only after the
            sequenced storage hand-off — a crash in between replays it
            under the *same* batch index (at-least-once; the sequencer
            re-releases already-released indices and upsert dedupes).
            """
            claim_shrink = None
            if elastic:
                def claim_shrink():
                    if pool["shrink"] > 0:
                        pool["shrink"] -= 1
                        return True
                    return False

            while True:
                if inflight["batch"] is not None:
                    index = inflight["index"]
                    batch = inflight["batch"]
                    sub = inflight["sub"]
                    of = inflight["of"]
                    faults.records_replayed += sum(len(p) for p in batch)
                else:
                    got = yield from buffer.collect(
                        batch_size, cancel=claim_shrink, steal=steal
                    )
                    if got is CANCELLED:
                        pool["scale_downs"] += 1
                        break  # retired by the elastic controller
                    if got is None:
                        break  # EOF and drained
                    if isinstance(got, _SubBatch):
                        # a peer's oversized batch: work one slice of it
                        index, sub, of = got.index, got.sub, got.of
                        batch = got.lists
                    else:
                        index = pool["assign"]
                        pool["assign"] += 1
                        if track:
                            note_claimed(index, got)
                        subs = (
                            _split_batch(got, max_sub)
                            if split_enabled
                            else None
                        )
                        if subs is None:
                            batch, sub, of = got, 0, 1
                        else:
                            # keep the first slice; queue the rest and wake
                            # idle peers to steal them
                            of = len(subs)
                            pool["subbatches"] += of
                            for s in range(1, of):
                                pool["subqueue"].append(
                                    _SubBatch(index, s, of, subs[s])
                                )
                            buffer.kick()
                            batch, sub = subs[0], 0
                    inflight["index"] = index
                    inflight["batch"] = batch
                    inflight["sub"] = sub
                    inflight["of"] = of
                total = sum(len(p) for p in batch)
                outputs: List[List[dict]] = [[] for _ in range(n)]
                collect_slot["outputs"] = outputs
                eval_ctx.refresh_batch()
                eval_ctx.shared_meter.reset()
                eval_ctx.replicated_meter.reset()
                if predeploy:
                    result = self.afm.invoke_computing_job(feed.name, batch)
                else:
                    result = cluster.controller.run_job(spec_builder(batch))
                shared_seconds = eval_ctx.shared_meter.charge(cost)
                replicated_seconds = eval_ctx.replicated_meter.charge(cost)
                busy = dict(result.node_busy_seconds)
                for node in busy:
                    busy[node] += shared_seconds / n + replicated_seconds
                teardown = (
                    result.makespan_seconds
                    - result.startup_seconds
                    - result.critical_node_seconds
                )
                makespan = result.startup_seconds + max(busy.values()) + teardown
                if feed.functions:
                    makespan += cost.udf_job_overhead(n)
                if coordinator is not None:
                    # External fan-out happens after the local computing
                    # job finishes, so its fault windows are evaluated at
                    # the batch's completion time and its elapsed time
                    # lands on the batch makespan (mutates ``outputs``:
                    # enrichments stored, pending markers added,
                    # dead-lettered records removed before storage).
                    makespan += coordinator.enrich_batch(
                        outputs, runtime.clock.now + makespan
                    )
                batch_started = runtime.clock.now
                if pool["first_busy"] is None:
                    pool["first_busy"] = batch_started
                yield Advance(makespan)
                # Sequenced hand-off: the real writes (and storage-channel
                # items) for this index — plus any later indices it
                # unblocks — are released in batch order.
                released = yield from sequencer.put(
                    index, outputs, sub_index=sub, num_subs=of
                )
                if track and released:
                    # the released batches' writes are on disk: persist
                    # the cursors that make them durable across a restart
                    commit_checkpoint()
                if fabric is not None and released:
                    # a batch boundary: the memory governor's rebalance
                    # point (a no-op for fabrics without a governor)
                    fabric.note_batch_released(run_name)
                if not decoupled:
                    # §5.2 ablation: the coupled insert job waits for the
                    # log force and storage writes before finishing (a
                    # worker also absorbs the wait for any peer batches
                    # its release unblocked).
                    for rel_index, rel_seconds in released:
                        if rel_seconds > 0:
                            yield Advance(rel_seconds)
                        if rel_index == index:
                            makespan += rel_seconds
                        state["coupled_extra"] += rel_seconds
                state["computing_total"] += makespan
                pool["worker_busy"][worker_name] += makespan
                pool["last_busy"] = max(pool["last_busy"], runtime.clock.now)
                report.num_computing_jobs += 1
                batch_latencies.append(runtime.clock.now - batch_started)
                report.batch_stats.append(
                    BatchStats(
                        batch_index=index,
                        records=total,
                        makespan_seconds=makespan,
                        startup_seconds=result.startup_seconds,
                        shared_state_seconds=shared_seconds,
                        sub_index=sub,
                    )
                )
                if update_client is not None:
                    update_client.advance(makespan)
                inflight["index"] = None
                inflight["batch"] = None  # acked: the sequencer released it
            pool["running"] -= 1
            pool["timeline"].append(
                (runtime.clock.now - runtime.epoch, pool["running"])
            )
            if fabric is not None:
                # EOF drain or a recalled retire: either way this worker's
                # lease returns to the fabric, which may immediately fund
                # a queued borrower's grow
                fabric.release_worker(run_name)
            if pool["running"] == 0 and not pool["ended"]:
                pool["ended"] = True
                if storage_channel is not None:
                    storage_channel.end()

        def spawn_worker():
            wid = pool["spawned"]
            pool["spawned"] += 1
            # worker 0 keeps the historical single-actor name; extra
            # workers get a .wN suffix (fault targets matching the
            # 'computing' layer hit them all)
            name = (
                f"{run_name}.computing"
                if wid == 0
                else f"{run_name}.computing.w{wid}"
            )
            pool["worker_busy"][name] = 0.0
            pool["running"] += 1
            pool["peak"] = max(pool["peak"], pool["running"])
            pool["timeline"].append(
                (runtime.clock.now - runtime.epoch, pool["running"])
            )
            inflight = {"index": None, "batch": None, "sub": 0, "of": 1}
            supervisor.spawn(
                name, lambda: worker_loop(name, inflight), layer="computing"
            )

        def elastic_controller():
            """Sample intake congestion on the clock; resize the pool.

            Grover & Carey's congestion reaction, made real: sustained
            high occupancy (or a blocked producer / fresh backpressure
            stall) grows the pool toward ``max_computing_workers``;
            sustained starvation retires workers back toward
            ``min_computing_workers`` via cancel tokens claimed at the
            next batch boundary.  The controller exits once the buffer is
            drained after EOF, so it never outlives the feed.
            """
            up_streak = 0
            down_streak = 0
            last_stalls = buffer.stalls
            while not (buffer.all_eof and buffer.drained):
                yield Advance(policy.elastic_sample_seconds, state=IDLE)
                if buffer.all_eof and buffer.drained:
                    break
                occupancy = buffer.occupancy
                backlog = buffer.queued_records / batch_size
                congested = (
                    occupancy >= policy.elastic_scale_up_occupancy
                    or buffer.producer_blocked
                    or buffer.stalls > last_stalls
                    or backlog >= policy.elastic_backlog_batches
                )
                starved = (
                    occupancy <= policy.elastic_scale_down_occupancy
                    and backlog < 1.0
                    and not buffer.producer_blocked
                )
                last_stalls = buffer.stalls
                if fabric is not None:
                    # the feed's standing bid: every sample tick's
                    # congestion signals, whether or not a grow follows
                    fabric.tick(
                        run_name,
                        FeedSignals(
                            occupancy=occupancy,
                            backlog_batches=backlog,
                            producer_blocked=buffer.producer_blocked,
                            congested=congested,
                            starved=starved,
                        ),
                    )
                if congested:
                    up_streak += 1
                    down_streak = 0
                elif starved:
                    down_streak += 1
                    up_streak = 0
                else:
                    up_streak = 0
                    down_streak = 0
                effective = pool["running"] - pool["shrink"]
                if (
                    congested
                    and up_streak >= policy.elastic_sustained_samples
                    and effective < workers_max
                ):
                    if pool["shrink"] > 0:
                        pool["shrink"] -= 1  # cancel a pending retire instead
                        if fabric is not None:
                            # a fabric recall may have been riding that token
                            fabric.note_shrink_cancelled(run_name)
                    elif fabric is None or fabric.acquire(run_name):
                        # under a fabric, a grow must be funded from the
                        # global budget; an unfunded bid queues inside the
                        # fabric, which grows this pool itself (via the
                        # registered grow hook) once a worker frees up
                        pool["scale_ups"] += 1
                        spawn_worker()
                    up_streak = 0
                elif (
                    down_streak >= policy.elastic_sustained_samples
                    and effective > workers_min
                ):
                    pool["shrink"] += 1
                    buffer.kick()  # wake an idle worker to claim the token
                    down_streak = 0

        supervisor = Supervisor(runtime, policy.restart_policy())

        if fabric is not None:

            def fabric_grow():
                # a queued borrow bid just got funded: grow the pool now
                pool["scale_ups"] += 1
                spawn_worker()

            def fabric_recall():
                # Recall safety: re-check the live pool so a fabric recall
                # can never stack with the feed's own pending retires to
                # drop the pool below its floor.
                if pool["running"] - pool["shrink"] > workers_min:
                    pool["shrink"] += 1
                    buffer.kick()  # wake an idle worker to claim the token
                    return True
                return False

            fabric.register_feed(
                run_name,
                policy,
                grow=fabric_grow if elastic else None,
                recall=fabric_recall if elastic else None,
            )
        if num_partitions == 1:
            supervisor.spawn(
                f"{run_name}.intake",
                intake.make_body(
                    adapters[0], buffer, batch_size, policy, faults,
                    partition=0, shared=shared,
                    resume_from=resume_cursors.get(0),
                ),
                layer="intake",
            )
        else:
            # one intake actor per partition, individually supervised:
            # fault targets can name one ('intake.p1') or the whole layer
            for p, part_adapter in enumerate(adapters):
                supervisor.spawn(
                    f"{run_name}.intake.p{p}",
                    intake.make_body(
                        part_adapter, buffer, batch_size, policy, faults,
                        partition=p, shared=shared,
                        resume_from=resume_cursors.get(p),
                    ),
                    layer="intake",
                )
        for _ in range(workers_min):
            spawn_worker()
        if fabric is not None:
            fabric.note_initial(run_name, workers_min)
        if decoupled:
            supervisor.spawn(
                f"{run_name}.storage",
                lambda: storage.process(storage_channel),
                layer="storage",
            )
        if elastic:
            runtime.spawn(
                f"{run_name}.elastic", elastic_controller(), layer="elastic"
            )

        def collect_faults():
            # On a private runtime every injected crash is this feed's;
            # on a shared (multi-feed) runtime the per-feed supervisor
            # counts this feed's crashes.  Injected stall time is a
            # runtime-global figure either way: exact for a private
            # runtime, fleet-wide on a shared one.
            faults.crashes = (
                runtime.injected_crashes
                if owns_runtime
                else supervisor.total_crashes
            )
            faults.restarts = supervisor.total_restarts
            faults.backoff_seconds = supervisor.total_backoff_seconds
            faults.stall_seconds = runtime.injected_stall_seconds
            if storage_channel is not None:
                faults.channel_send_failures = storage_channel.send_failures

        def finalize(elapsed: float) -> FeedRunReport:
            if track:
                # the run drained cleanly: seal the checkpoint so a later
                # resume knows there is nothing left to replay
                commit_checkpoint(complete=True)
            return assemble_report(elapsed)

        def assemble_report(elapsed: float) -> FeedRunReport:
            computing_total = state["computing_total"]
            # With overlapping workers the layer's aggregate busy exceeds
            # any wall-clock interval; the *bottleneck* contribution is the
            # slowest single worker (identical to the aggregate when the
            # pool size is 1).
            computing_bottleneck = (
                max(pool["worker_busy"].values()) if pool["worker_busy"] else 0.0
            )
            report.batch_stats.sort(
                key=lambda stats: (stats.batch_index, stats.sub_index)
            )
            # With one intake actor the layer's bottleneck is the busiest
            # intake node; partitioned actors overlap, so it is the slowest
            # single partition (analogous to the worker pool above).
            intake_bottleneck = (
                intake.max_busy
                if num_partitions == 1
                else max(intake.partition_busy.values())
            )
            report.records_ingested = intake.records_received
            report.records_stored = storage.records_stored
            report.intake_seconds = intake_bottleneck
            report.intake_partitions = num_partitions
            if num_partitions > 1:
                report.intake_partition_busy = dict(intake.partition_busy)
            report.subbatches_dispatched = pool["subbatches"]
            report.acked_batches = sequencer.next_index
            report.checkpoint_commits = pool["checkpoint_commits"]
            report.resumed_from_checkpoint = base_checkpoint is not None
            report.computing_seconds = computing_total
            report.computing_worker_busy = dict(pool["worker_busy"])
            report.computing_wall_seconds = (
                pool["last_busy"] - pool["first_busy"]
                if pool["first_busy"] is not None
                else 0.0
            )
            report.peak_computing_workers = pool["peak"]
            report.scale_ups = pool["scale_ups"]
            report.scale_downs = pool["scale_downs"]
            report.storage_seconds = storage.max_busy
            if decoupled:
                steady = max(
                    intake_bottleneck, computing_bottleneck, storage.max_busy
                )
            else:
                steady = max(intake_bottleneck, computing_bottleneck)
            start_overhead = cost.job_startup(n, predeployed=False) * 2
            # The emergent makespan exceeds the bottleneck layer's busy time
            # by the pipeline's fill/drain ramp; like job startup, that ramp
            # is a one-time cost that amortizes to nothing on a long-running
            # feed, so it lands in fixed_start_seconds and steady-state
            # throughput remains records / bottleneck-busy.  Computed as one
            # subtraction so simulated - fixed_start recovers the bottleneck
            # time exactly.  On a shared multi-feed runtime ``elapsed`` is
            # the *fleet's* makespan, so every report of the run carries the
            # same simulated_seconds — the aggregate figure multi-tenant
            # benchmarks compare.
            report.simulated_seconds = start_overhead + elapsed
            report.fixed_start_seconds = report.simulated_seconds - steady
            report.stalls = buffer.stalls
            report.extra["deploy_seconds"] = (
                cluster.controller.simulated_deploy_seconds
            )
            if state_cache is not None and state_cache_before is not None:
                after = state_cache.stats()
                report.state_cache_hits = (
                    after["hits"] - state_cache_before["hits"]
                )
                report.state_cache_misses = (
                    after["misses"] - state_cache_before["misses"]
                )
                report.state_cache_evictions = (
                    after["evictions"] - state_cache_before["evictions"]
                )
                report.state_cache_bytes = after["bytes"]
            if memo is not None and memo_before is not None:
                after = memo.stats()
                report.memo_hits = after["hits"] - memo_before["hits"]
                report.memo_misses = after["misses"] - memo_before["misses"]
                report.memo_evictions = (
                    after["evictions"] - memo_before["evictions"]
                )
                report.memo_bytes = after["bytes"]
            if owns_runtime:
                _apply_plan_cache_delta(report, eval_ctx, plan_cache_before)
            else:
                # shared runtime: the registry-wide delta interleaves every
                # tenant's batches — use this feed's own invocation tally
                for name in _VECTORIZATION_COUNTERS:
                    setattr(report, name, eval_ctx.columnar_tally[name])
            if coordinator is not None:
                report.external = coordinator.finalize()
                report.enrichment_completeness = coordinator.completeness
            if fabric is not None:
                tenant = fabric.tenant_report(run_name)
                report.borrowed_workers = tenant["borrowed_workers"]
                report.lease_timeline = tenant["lease_timeline"]
                report.governor_grants = fabric.governor_grants_for(run_name)
            report.runtime = RuntimeMetrics.from_runtime(
                runtime,
                holders=list(intake.holders) + list(storage.holders),
                stall_count=buffer.stalls
                + (storage_channel.stalls if storage_channel is not None else 0),
                batch_latencies=batch_latencies,
                steady_state_seconds=steady,
                faults=faults,
                worker_pool_timeline=pool["timeline"],
                scale_ups=pool["scale_ups"],
                scale_downs=pool["scale_downs"],
                reordered_batches=sequencer.reordered,
                intake_partitions=num_partitions,
                subbatches=pool["subbatches"],
                subbatch_merges=sequencer.subbatch_merges,
                checkpoint_commits=pool["checkpoint_commits"],
                state_cache_hits=report.state_cache_hits,
                state_cache_misses=report.state_cache_misses,
                state_cache_evictions=report.state_cache_evictions,
                state_cache_bytes=report.state_cache_bytes,
                memo_hits=report.memo_hits,
                memo_misses=report.memo_misses,
                memo_evictions=report.memo_evictions,
                memo_bytes=report.memo_bytes,
                vectorized_batches=report.vectorized_batches,
                vectorized_records=report.vectorized_records,
                scalar_fallbacks=report.scalar_fallbacks,
                external=report.external,
                enrichment_completeness=report.enrichment_completeness,
                process_prefix=None if owns_runtime else f"{run_name}.",
                borrowed_workers=report.borrowed_workers,
                lease_timeline=report.lease_timeline,
                governor_grants=report.governor_grants,
            )
            return report

        handle = FeedRunHandle()
        handle.feed_name = feed.name
        handle.run_name = run_name
        handle.runtime = runtime
        handle.owns_runtime = owns_runtime
        handle.finalize = finalize
        handle.collect_faults = collect_faults
        handle.cleanup = cleanup if cleanup is not None else (lambda: None)
        return handle
