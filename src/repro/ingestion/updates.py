"""Concurrent reference-data update clients (paper §7.3).

During ingestion, a client program sends reference updates through a feed;
the update rate is in records per *simulated* second.  The feed driver
calls :meth:`advance` with the simulated time each batch took; the client
applies the corresponding number of updates, which activates the reference
dataset's in-memory LSM component and makes subsequent reference accesses
pay the activity penalty.
"""

from __future__ import annotations

from typing import Callable, Iterator, List


class ReferenceUpdateClient:
    """Applies updates at a fixed rate against simulated time.

    ``update_source`` yields update records; ``apply`` upserts one into the
    reference dataset.  Fractional updates carry over between calls so low
    rates still fire.
    """

    def __init__(
        self,
        rate_per_second: float,
        update_source: Iterator[dict],
        apply: Callable[[dict], None],
    ):
        if rate_per_second < 0:
            raise ValueError("rate_per_second must be >= 0")
        self.rate = rate_per_second
        self._source = iter(update_source)
        self._apply = apply
        self._carry = 0.0
        self.applied = 0
        #: True once ``update_source`` raised StopIteration: the client is
        #: permanently out of updates and later ``advance`` calls are
        #: no-ops (they do not accumulate carry or count as activity)
        self.exhausted = False

    def advance(self, sim_seconds: float) -> int:
        """Apply ``rate * sim_seconds`` updates; returns how many fired."""
        if self.exhausted or self.rate == 0 or sim_seconds <= 0:
            return 0
        self._carry += self.rate * sim_seconds
        fired = 0
        while self._carry >= 1.0:
            try:
                record = next(self._source)
            except StopIteration:
                self.exhausted = True
                self._carry = 0.0
                break
            self._apply(record)
            fired += 1
            self._carry -= 1.0
        self.applied += fired
        return fired


class CompositeUpdateClient:
    """Fans :meth:`advance` out to several clients (multi-dataset UDFs)."""

    def __init__(self, clients: List[ReferenceUpdateClient]):
        self.clients = list(clients)

    def advance(self, sim_seconds: float) -> int:
        return sum(client.advance(sim_seconds) for client in self.clients)

    @property
    def applied(self) -> int:
        return sum(client.applied for client in self.clients)

    @property
    def exhausted(self) -> bool:
        """True when every member client has run out of updates."""
        return bool(self.clients) and all(c.exhausted for c in self.clients)
