"""Ingestion policies: what a feed does when things go wrong.

Grover & Carey's *Scalable Fault-Tolerant Data Feeds in AsterixDB* (the
predecessor of the paper's framework) attaches a policy to each feed
governing **soft errors** (a malformed record, a per-record UDF failure:
skip it, log it, or fail the feed) and **congestion** (a full intake
buffer: block, throttle admission, spill, or discard).  This module is
that concept for the reproduction:

* :class:`FeedPolicy` — the per-feed knob set, attached via
  ``AsterixLite.connect_feed(..., policy=...)`` or
  ``FeedDefinition(policy=...)``, with the classic presets as
  constructors (:meth:`FeedPolicy.basic`, :meth:`FeedPolicy.spill`,
  :meth:`FeedPolicy.discard`, :meth:`FeedPolicy.throttle`,
  :meth:`FeedPolicy.elastic`);
* :class:`SoftErrorHandler` — the per-run enforcement object shared by
  the parse and UDF stages: it skips, dead-letters (raw text + error +
  provenance into a queryable dataset), or escalates, and trips a
  max-consecutive-failures circuit breaker;
* :func:`ensure_dead_letter_dataset` — creates/returns the feed's
  dead-letter dataset so entries are queryable via SQL++.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Dict, Optional

from ..adm.schema import open_type
from ..errors import CircuitBreakerError
from ..runtime.metrics import FaultMetrics
from ..runtime.supervisor import RestartPolicy


class SoftErrorAction(enum.Enum):
    """What to do with a record that fails to parse or enrich."""

    FAIL = "fail"  # escalate: the error aborts the feed (the seed behavior)
    SKIP = "skip"  # drop the record, count it
    DEAD_LETTER = "dead_letter"  # route raw text + error + provenance aside


class CongestionAction(enum.Enum):
    """What intake does when the bounded buffer fills (storage stalls)."""

    BLOCK = "block"  # backpressure all the way to the adapter (spill-like)
    DISCARD = "discard"  # drop frames at admission, count them
    THROTTLE = "throttle"  # slow admission with growing delays


class ExternalFailureAction(enum.Enum):
    """What to do with a record whose external enrichment exhausted its
    retry budget (progressive degradation — PIQUE's pay-as-you-go)."""

    PENDING = "pending"  # store with null enrichment + _enrichment_pending
    DEAD_LETTER = "dead_letter"  # route the record aside with provenance
    FAIL = "fail"  # escalate: the failure aborts the feed


@dataclass(frozen=True)
class FeedPolicy:
    """Per-feed fault-handling knobs.

    ``max_consecutive_soft_errors`` is the circuit breaker: more than that
    many soft errors *in a row* (successes reset the streak) escalate to
    :class:`~repro.errors.CircuitBreakerError` regardless of the soft-error
    action.  ``0`` disables the breaker.
    """

    name: str = "Basic"
    on_soft_error: SoftErrorAction = SoftErrorAction.FAIL
    on_congestion: CongestionAction = CongestionAction.BLOCK
    max_consecutive_soft_errors: int = 0
    dead_letter_dataset: Optional[str] = None  # default: <feed>_DeadLetters
    throttle_seconds: float = 0.01  # initial admission delay when throttling
    throttle_max_seconds: float = 0.64
    #: sim seconds an idle-but-open adapter (e.g. an un-ended QueueAdapter)
    #: may starve intake before the feed treats the stream as complete
    adapter_idle_timeout_seconds: Optional[float] = 10.0
    adapter_idle_poll_seconds: float = 0.5
    # supervised-recovery knobs (crashed layer actors)
    max_restarts: int = 3
    backoff_initial_seconds: float = 0.05
    backoff_multiplier: float = 2.0
    backoff_max_seconds: float = 5.0
    # computing worker-pool knobs: the feed runs ``min_computing_workers``
    # concurrent computing actors, and — when ``max_computing_workers`` is
    # larger — the elastic controller scales the pool between the bounds
    # from sampled intake-buffer congestion.  A single-worker pool is
    # byte-identical to the pre-pool single computing actor.
    min_computing_workers: int = 1
    max_computing_workers: int = 1
    # elastic-controller knobs (only consulted when max > min): sample the
    # intake buffer every ``elastic_sample_seconds`` of simulated time.
    # A sample is *congested* when holder occupancy reaches the scale-up
    # threshold, the producer is blocked (or stalled since the last
    # sample), or at least ``elastic_backlog_batches`` full batches of
    # records sit ready in the buffer; after
    # ``elastic_sustained_samples`` consecutive congested samples the pool
    # grows by one worker.  A sample is *starved* when occupancy is at or
    # below the scale-down threshold, the producer is unblocked, and less
    # than one full batch is queued; sustained starvation retires one
    # worker.
    elastic_sample_seconds: float = 0.02
    elastic_scale_up_occupancy: float = 0.5
    elastic_scale_down_occupancy: float = 0.05
    elastic_backlog_batches: float = 2.0
    elastic_sustained_samples: int = 2
    #: byte budget for the cross-batch enrichment-state cache (hash-join
    #: build tables etc. reused across batches while the reference data's
    #: version is unchanged).  ``0`` — the default — disables the cache
    #: entirely, keeping exact per-batch-rebuild cost accounting.
    state_cache_bytes: int = 0
    #: byte budget for the cross-batch key-level enrichment memo (per-key
    #: correlated-subquery / probe-kernel / external-enrichment results
    #: reused across batches under the same version proofs as the state
    #: cache; external hits skip the remote call, its rate-limit token,
    #: and its breaker budget entirely).  ``0`` — the default — disables
    #: the memo, keeping exact re-enrichment cost accounting.
    enrichment_memo_bytes: int = 0
    #: partitioned-intake knob: run this many adapter partitions, each as
    #: its own supervised intake actor merging into the shared intake
    #: buffer under one logical per-partition ``(partition, seq)`` cursor.
    #: ``1`` (the default) is byte-identical to the single-lane intake.
    #: With more than one partition the feed needs either a splittable
    #: adapter (a :class:`~repro.ingestion.adapter.FileAdapter`) or an
    #: explicit sequence of per-partition adapters.
    intake_partitions: int = 1
    #: intra-batch parallelism knob: a collected batch with more records
    #: than this is split into K contiguous sub-batches dispatched across
    #: the computing worker pool; the sequencer merges sub-results back in
    #: record order before release, so stored output stays byte-identical.
    #: ``0`` (the default) disables sub-batch splitting.
    max_subbatch_records: int = 0
    # external-enrichment resilience knobs — consulted only when the feed
    # has external enrichers attached (see ingestion/external.py).  Every
    # enricher call gets a deadline; a failed chunk is retried up to
    # ``external_max_attempts`` total attempts with exponential backoff
    # plus deterministic jitter; a client-side token bucket paces calls;
    # a per-enricher circuit breaker fails fast once the remote looks
    # hard-down and probes it again after a cool-off.
    external_deadline_seconds: float = 0.05
    external_max_attempts: int = 3
    external_backoff_initial_seconds: float = 0.01
    external_backoff_multiplier: float = 2.0
    external_backoff_max_seconds: float = 0.5
    external_backoff_jitter: float = 0.25  # fraction added on top, [0, jitter)
    external_concurrency: int = 4  # simulated in-flight calls per enricher
    external_chunk_size: int = 16  # probe keys per batched call
    external_rate_limit_per_second: float = 0.0  # client bucket; 0 = unlimited
    external_rate_limit_burst: int = 4
    external_breaker_failures: int = 5  # consecutive failures to open; 0 = off
    external_breaker_reset_seconds: float = 0.5  # open -> half-open cool-off
    external_breaker_half_open_probes: int = 1
    external_on_failure: ExternalFailureAction = ExternalFailureAction.PENDING
    # multi-tenant fabric knobs — consulted only when the feed runs under a
    # :class:`~repro.ingestion.fabric.FeedFabric`.  ``priority`` orders
    # tenants when worker leases or governor bytes are contended (higher
    # wins ties first; lower-priority tenants are preferred recall
    # victims); ``fair_share`` is a relative weight multiplying the
    # tenant's claim on the governed cache budget.  Both are inert for a
    # solo feed, keeping single-feed runs byte-identical.
    priority: int = 1
    fair_share: float = 1.0

    def __post_init__(self):
        if self.priority < 1:
            raise ValueError("priority must be >= 1")
        if self.fair_share <= 0:
            raise ValueError("fair_share must be positive")
        if self.state_cache_bytes < 0:
            raise ValueError("state_cache_bytes must be >= 0")
        if self.enrichment_memo_bytes < 0:
            raise ValueError("enrichment_memo_bytes must be >= 0")
        if self.intake_partitions < 1:
            raise ValueError("intake_partitions must be >= 1")
        if self.max_subbatch_records < 0:
            raise ValueError("max_subbatch_records must be >= 0")
        if self.min_computing_workers < 1:
            raise ValueError("min_computing_workers must be >= 1")
        if self.max_computing_workers < self.min_computing_workers:
            raise ValueError(
                "max_computing_workers must be >= min_computing_workers"
            )
        if self.elastic_sample_seconds <= 0:
            raise ValueError("elastic_sample_seconds must be positive")
        if self.elastic_sustained_samples < 1:
            raise ValueError("elastic_sustained_samples must be >= 1")
        if self.elastic_backlog_batches <= 0:
            raise ValueError("elastic_backlog_batches must be positive")
        if self.external_deadline_seconds <= 0:
            raise ValueError("external_deadline_seconds must be positive")
        if self.external_max_attempts < 1:
            raise ValueError("external_max_attempts must be >= 1")
        if self.external_concurrency < 1:
            raise ValueError("external_concurrency must be >= 1")
        if self.external_chunk_size < 1:
            raise ValueError("external_chunk_size must be >= 1")
        if self.external_rate_limit_per_second < 0:
            raise ValueError("external_rate_limit_per_second must be >= 0")
        if self.external_rate_limit_burst < 1:
            raise ValueError("external_rate_limit_burst must be >= 1")
        if self.external_breaker_failures < 0:
            raise ValueError("external_breaker_failures must be >= 0")
        if self.external_breaker_half_open_probes < 1:
            raise ValueError("external_breaker_half_open_probes must be >= 1")

    @property
    def elastic_enabled(self) -> bool:
        """True when the worker pool may be resized mid-run."""
        return self.max_computing_workers > self.min_computing_workers

    # ------------------------------------------------------------- presets

    @classmethod
    def basic(cls, **overrides) -> "FeedPolicy":
        """Grover & Carey's *Basic*: any failure fails the feed."""
        return replace(cls(name="Basic", max_restarts=0), **overrides)

    @classmethod
    def spill(cls, **overrides) -> "FeedPolicy":
        """*Spill*: soft errors go to the dead-letter dataset; congestion
        backpressures into the bounded intake buffer (the spill surface)."""
        return replace(
            cls(
                name="Spill",
                on_soft_error=SoftErrorAction.DEAD_LETTER,
                on_congestion=CongestionAction.BLOCK,
            ),
            **overrides,
        )

    @classmethod
    def discard(cls, **overrides) -> "FeedPolicy":
        """*Discard*: soft errors are skipped, congestion drops frames."""
        return replace(
            cls(
                name="Discard",
                on_soft_error=SoftErrorAction.SKIP,
                on_congestion=CongestionAction.DISCARD,
            ),
            **overrides,
        )

    @classmethod
    def throttle(cls, **overrides) -> "FeedPolicy":
        """*Throttle*: dead-letter soft errors, slow admission under
        congestion instead of blocking on the consumer."""
        return replace(
            cls(
                name="Throttle",
                on_soft_error=SoftErrorAction.DEAD_LETTER,
                on_congestion=CongestionAction.THROTTLE,
            ),
            **overrides,
        )

    @classmethod
    def elastic(cls, **overrides) -> "FeedPolicy":
        """*Elastic*: the congestion reaction is *scale out* — the feed may
        grow its computing worker pool up to ``max_computing_workers``
        under sustained intake congestion and shrink back when starved.
        Soft errors dead-letter, congestion otherwise blocks, and the
        restart budget is generous (workers are supervised individually).
        """
        return replace(
            cls(
                name="Elastic",
                on_soft_error=SoftErrorAction.DEAD_LETTER,
                on_congestion=CongestionAction.BLOCK,
                max_consecutive_soft_errors=64,
                max_restarts=8,
                max_computing_workers=4,
            ),
            **overrides,
        )

    # -------------------------------------------------------------- helpers

    def dead_letter_name(self, feed_name: str) -> str:
        return self.dead_letter_dataset or f"{feed_name}_DeadLetters"

    def restart_policy(self) -> RestartPolicy:
        return RestartPolicy(
            max_restarts=self.max_restarts,
            backoff_initial_seconds=self.backoff_initial_seconds,
            backoff_multiplier=self.backoff_multiplier,
            backoff_max_seconds=self.backoff_max_seconds,
        )


#: the default policy: identical to the seed behavior (fail on anything)
DEFAULT_POLICY = FeedPolicy.basic()


def ensure_dead_letter_dataset(
    catalog: Dict[str, object], feed_name: str, policy: FeedPolicy,
    num_partitions: int = 1,
):
    """Create (or return) the feed's dead-letter dataset in ``catalog``.

    An open-typed dataset keyed by ``dl_id`` — a *stable* key derived from
    the failing stage and the record's provenance (adapter ``seq`` when
    stamped, the raw text otherwise), so a batch replayed after a crash
    upserts the same entries instead of duplicating them.  Each record
    carries the feed name, failing stage, ``seq``, the raw record text,
    and the error message — queryable via SQL++ like any other dataset.
    """
    from ..storage.dataset import Dataset

    name = policy.dead_letter_name(feed_name)
    dataset = catalog.get(name)
    if dataset is None:
        dataset = Dataset(
            name,
            open_type("DeadLetterType", dl_id="string"),
            "dl_id",
            num_partitions=num_partitions,
        )
        catalog[name] = dataset
    return dataset


class SoftErrorHandler:
    """Per-run soft-error enforcement shared by the parse and UDF stages.

    Thread the same instance through every stage of one feed run so the
    circuit breaker sees the global consecutive-failure streak.
    """

    def __init__(
        self,
        feed_name: str,
        policy: FeedPolicy,
        faults: FaultMetrics,
        dead_letter_dataset=None,
    ):
        self.feed_name = feed_name
        self.policy = policy
        self.faults = faults
        self.dead_letters = dead_letter_dataset
        self.consecutive = 0

    def handle(self, stage: str, raw: str, error: Exception, seq=None) -> None:
        """React to one soft error per the policy; raises to escalate.

        ``stage`` is ``'parse'`` or ``'udf'``; ``raw`` is the offending
        record's raw text (or serialized form); ``seq`` is the
        adapter-stamped sequence number when known.
        """
        action = self.policy.on_soft_error
        if action is SoftErrorAction.FAIL:
            raise error
        self.consecutive += 1
        limit = self.policy.max_consecutive_soft_errors
        if limit and self.consecutive > limit:
            self.faults.circuit_breaker_trips += 1
            raise CircuitBreakerError(
                self.feed_name, self.consecutive, limit, last_error=error
            ) from error
        if action is SoftErrorAction.SKIP or self.dead_letters is None:
            self.faults.records_skipped += 1
            return
        self.faults.records_dead_lettered += 1
        # Stable key: a replayed batch upserts the same entry rather than
        # appending a duplicate (the dead-letter analog of pk-upsert dedup).
        dl_id = f"{stage}#{seq}" if seq is not None else f"{stage}#{raw}"
        self.dead_letters.upsert(
            {
                "dl_id": dl_id,
                "feed": self.feed_name,
                "stage": stage,
                "seq": seq,
                "raw": raw,
                "error": f"{type(error).__name__}: {error}",
            }
        )

    def note_success(self) -> None:
        """A record made it through: the breaker streak resets."""
        self.consecutive = 0
