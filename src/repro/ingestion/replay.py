"""Dead-letter replay: re-ingest repaired rows from ``<Feed>_DeadLetters``.

The spill-style policies route unparseable or UDF-failing records into a
queryable dead-letter dataset instead of aborting the feed.  Once an
operator has repaired the offending ``raw`` text (e.g. via ``upsert`` into
the dead-letter dataset), :func:`replay_dead_letters` pushes the repaired
rows back through the *same* feed pipeline — same target dataset, same
attached functions, same policy — and clears the replayed entries.

The replay is failure-isolated: one bad row cannot poison the pass.  The
snapshot first replays as a whole batch (the fast path); if that run
aborts — a fail-fast policy escalating, a tripped circuit breaker — the
pass falls back to row-at-a-time replay so every other row still gets its
chance.  Rows that fail again are re-dead-lettered under their original
``dl_id`` with provenance: an ``attempts`` counter (how many replay passes
have retried them) and a ``retryable`` classification — transient
failure families (external enrichment, circuit breakers) are worth
another pass once conditions recover; everything else (malformed input,
bad UDFs) is permanently broken until an operator repairs the raw text.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .adapter import GeneratorAdapter
from .feed import FeedRunReport
from .policy import DEFAULT_POLICY, FeedPolicy

#: exception families whose replay failures are transient — the outside
#: condition (a down remote, an open breaker) may recover, so a later
#: replay pass should retry them without operator repair
RETRYABLE_ERROR_NAMES = frozenset(
    {"ExternalEnrichmentError", "CircuitBreakerError", "FeedFailedError"}
)


def classify_replay_error(error) -> str:
    """``'retryable'`` for transient failure families, ``'permanent'`` else.

    Accepts an exception instance or a stored dead-letter ``error`` string
    (``"ExceptionName: message"``).
    """
    if isinstance(error, BaseException):
        name = type(error).__name__
    else:
        name = str(error).split(":", 1)[0].strip()
    return "retryable" if name in RETRYABLE_ERROR_NAMES else "permanent"


@dataclass
class ReplayReport:
    """Outcome of one :func:`replay_dead_letters` pass."""

    feed_name: str
    dead_letter_dataset: str
    replayed: int  # dead-letter rows pushed back through the feed
    records_stored: int  # rows that made it into the target dataset
    still_dead: int  # rows that failed again (back in the dl dataset)
    run: Optional[FeedRunReport] = None  # the whole-batch feed run, if any
    replayed_ids: List[str] = field(default_factory=list)
    #: still-dead rows by classification: transient failures a later pass
    #: should retry vs. rows needing operator repair
    retryable_failures: int = 0
    permanent_failures: int = 0


def _re_dead_letter(dataset, row: dict, attempts: int, error: str) -> None:
    """Put a failed row back under its *original* dl_id with provenance."""
    entry = dict(row)
    entry["attempts"] = attempts
    entry["error"] = error
    entry["retryable"] = classify_replay_error(error) == "retryable"
    dataset.upsert(entry)


def _annotate_residue(dataset, prior_attempts: Dict[str, int]) -> tuple:
    """Stamp attempts/classification on rows that failed again in-run.

    A row re-dead-lettered by the replay run's own soft-error path carries
    a fresh replay-seq dl_id and no attempt history; match it back to its
    snapshot entry by raw text and bump the counter.  Idempotent for rows
    the per-row fallback already annotated.  Returns the
    ``(retryable, permanent)`` residue counts.
    """
    retryable = 0
    permanent = 0
    for row in list(dataset.scan()):
        raw = str(row.get("raw"))
        if raw not in prior_attempts:
            continue
        updated = dict(row)
        updated["attempts"] = prior_attempts[raw] + 1
        updated["retryable"] = (
            classify_replay_error(str(row.get("error", ""))) == "retryable"
        )
        dataset.upsert(updated)
        if updated["retryable"]:
            retryable += 1
        else:
            permanent += 1
    return retryable, permanent


def replay_dead_letters(
    system,
    feed_name: str,
    batch_size: int = 420,
    policy: Optional[FeedPolicy] = None,
) -> ReplayReport:
    """Re-ingest every current dead-letter row of ``feed_name`` and clear it.

    Rows are replayed in provenance order (adapter ``seq``, then
    ``dl_id``), through ``system.start_feed`` with the feed's connected
    policy (or ``policy`` for this pass only), so repaired records land in
    the target dataset via the regular parse → enrich → store pipeline.
    Rows that fail again — whether the whole-batch run dead-letters them
    or aborts and the per-row fallback isolates them — return to the
    dead-letter dataset with an incremented ``attempts`` counter and a
    ``retryable`` classification.  Returns a :class:`ReplayReport`.
    """
    state = system._feed(feed_name)  # validates the feed exists
    resolved = policy or state.policy or DEFAULT_POLICY
    dl_name = resolved.dead_letter_name(feed_name)
    dataset = system.catalog.get(dl_name)
    if dataset is None:
        return ReplayReport(feed_name, dl_name, 0, 0, 0)

    snapshot = sorted(
        dataset.scan(),
        key=lambda row: (
            row.get("seq") is None,
            row.get("seq") if row.get("seq") is not None else 0,
            str(row.get("dl_id")),
        ),
    )
    if not snapshot:
        return ReplayReport(feed_name, dl_name, 0, 0, 0)
    prior_attempts = {
        str(row["raw"]): int(row.get("attempts", 0)) for row in snapshot
    }

    # Clear the snapshot *before* the run: a row that fails again gets a
    # fresh dl_id keyed by its replay-adapter seq, which may collide with a
    # snapshot id — deleting afterwards could silently drop the new entry.
    for row in snapshot:
        dataset.delete(row["dl_id"])
    stored_total = 0
    run_report = None
    try:
        adapter = GeneratorAdapter(str(row["raw"]) for row in snapshot)
        run_report = system.start_feed(
            feed_name,
            adapter=adapter,
            batch_size=batch_size,
            policy=policy,
        )
        stored_total = run_report.records_stored
    except Exception:
        # The whole-batch run aborted (a fail-fast policy escalating, a
        # tripped breaker).  Fall back to row-at-a-time replay: one bad
        # row no longer poisons the pass, and each failure is classified
        # and re-dead-lettered individually.  Rows the aborted run already
        # stored are re-stored and deduped by pk-upsert.
        for row in snapshot:
            before_ids = {r["dl_id"] for r in dataset.scan()}
            try:
                row_report = system.start_feed(
                    feed_name,
                    adapter=GeneratorAdapter([str(row["raw"])]),
                    batch_size=1,
                    policy=policy,
                )
                stored_total += row_report.records_stored
            except Exception as exc:
                _re_dead_letter(
                    dataset,
                    row,
                    prior_attempts[str(row["raw"])] + 1,
                    f"{type(exc).__name__}: {exc}",
                )
                continue
            # The row's run dead-lettered it in-run under a per-row replay
            # seq (always 0): fold the fresh entry back into the original
            # dl_id so consecutive per-row failures cannot collide.
            fresh = [r for r in dataset.scan() if r["dl_id"] not in before_ids]
            for entry in fresh:
                dataset.delete(entry["dl_id"])
                _re_dead_letter(
                    dataset,
                    row,
                    prior_attempts[str(row["raw"])] + 1,
                    str(entry.get("error", "")),
                )

    retryable_failures, permanent_failures = _annotate_residue(
        dataset, prior_attempts
    )
    return ReplayReport(
        feed_name=feed_name,
        dead_letter_dataset=dl_name,
        replayed=len(snapshot),
        records_stored=stored_total,
        still_dead=sum(1 for _ in dataset.scan()),
        run=run_report,
        replayed_ids=[str(row["dl_id"]) for row in snapshot],
        retryable_failures=retryable_failures,
        permanent_failures=permanent_failures,
    )
