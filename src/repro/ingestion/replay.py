"""Dead-letter replay: re-ingest repaired rows from ``<Feed>_DeadLetters``.

The spill-style policies route unparseable or UDF-failing records into a
queryable dead-letter dataset instead of aborting the feed.  Once an
operator has repaired the offending ``raw`` text (e.g. via ``upsert`` into
the dead-letter dataset), :func:`replay_dead_letters` pushes the repaired
rows back through the *same* feed pipeline — same target dataset, same
attached functions, same policy — and clears the replayed entries.  Rows
that fail *again* re-enter the dead-letter dataset through the normal
soft-error path, so the dataset always holds exactly the still-broken
residue.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from .adapter import GeneratorAdapter
from .feed import FeedRunReport
from .policy import DEFAULT_POLICY, FeedPolicy


@dataclass
class ReplayReport:
    """Outcome of one :func:`replay_dead_letters` pass."""

    feed_name: str
    dead_letter_dataset: str
    replayed: int  # dead-letter rows pushed back through the feed
    records_stored: int  # rows that made it into the target dataset
    still_dead: int  # rows that failed again (back in the dl dataset)
    run: Optional[FeedRunReport] = None  # the underlying feed run
    replayed_ids: List[str] = field(default_factory=list)


def replay_dead_letters(
    system,
    feed_name: str,
    batch_size: int = 420,
    policy: Optional[FeedPolicy] = None,
) -> ReplayReport:
    """Re-ingest every current dead-letter row of ``feed_name`` and clear it.

    Rows are replayed in provenance order (adapter ``seq``, then
    ``dl_id``), through ``system.start_feed`` with the feed's connected
    policy (or ``policy`` for this pass only), so repaired records land in
    the target dataset via the regular parse → enrich → store pipeline.
    Entries that fail again are re-dead-lettered by the run itself and
    survive; everything else is deleted.  Returns a :class:`ReplayReport`.
    """
    state = system._feed(feed_name)  # validates the feed exists
    resolved = policy or state.policy or DEFAULT_POLICY
    dl_name = resolved.dead_letter_name(feed_name)
    dataset = system.catalog.get(dl_name)
    if dataset is None:
        return ReplayReport(feed_name, dl_name, 0, 0, 0)

    snapshot = sorted(
        dataset.scan(),
        key=lambda row: (
            row.get("seq") is None,
            row.get("seq") if row.get("seq") is not None else 0,
            str(row.get("dl_id")),
        ),
    )
    if not snapshot:
        return ReplayReport(feed_name, dl_name, 0, 0, 0)

    # Clear the snapshot *before* the run: a row that fails again gets a
    # fresh dl_id keyed by its replay-adapter seq, which may collide with a
    # snapshot id — deleting afterwards could silently drop the new entry.
    for row in snapshot:
        dataset.delete(row["dl_id"])
    try:
        adapter = GeneratorAdapter(str(row["raw"]) for row in snapshot)
        report = system.start_feed(
            feed_name,
            adapter=adapter,
            batch_size=batch_size,
            policy=policy,
        )
    except Exception:
        # The replay run aborted (e.g. a Basic policy escalating): put the
        # snapshot back so no dead letter is lost.
        for row in snapshot:
            dataset.upsert(row)
        raise

    return ReplayReport(
        feed_name=feed_name,
        dead_letter_dataset=dl_name,
        replayed=len(snapshot),
        records_stored=report.records_stored,
        still_dead=sum(1 for _ in dataset.scan()),
        run=report,
        replayed_ids=[str(row["dl_id"]) for row in snapshot],
    )
