"""The multi-tenant feed fabric: one cluster, many feeds, shared budgets.

Production clusters don't run one feed — they run dozens, and the
resources that matter (computing workers, cache memory) are cluster-wide.
Grover & Carey's data-feeds paper frames ingestion policy as a resource
-arbitration problem; this module builds that arbiter for the repo's
layered feeds.  Two coupled schedulers:

* :class:`FeedFabric` — a **global worker budget** the per-feed elastic
  controllers bid into.  Each feed keeps its own controller and its own
  pool mechanics (cancel tokens, ``buffer.kick()``, the order-preserving
  sequencer); the fabric only decides *whether a grow is funded*.  Every
  sample tick the controller submits a :class:`FeedSignals` bid; a grow
  request either takes a spare worker immediately or queues (priority
  first, then arrival order) while the fabric recalls a worker from an
  uncongested tenant holding more than its ``min_computing_workers``
  floor.  Recalls reuse the existing retire machinery — a shrink token
  plus a ``kick`` — so a recalled worker exits at a batch boundary and
  the released slot funds the queued request.  Floors are inviolable:
  the recall hook re-checks the live pool before accepting a token, so
  a fabric recall can never race the feed's own controller below the
  floor.

* :class:`MemoryGovernor` — one cluster-wide cache budget arbitrated
  across every tenant's :class:`~repro.sqlpp.state_cache.StateCache` and
  :class:`~repro.sqlpp.memo.EnrichmentMemo` instead of N fixed private
  budgets.  Rebalanced at batch boundaries: each cache's share is
  proportional to ``priority × fair_share × (floor + observed hit
  ratio)``, so bytes flow toward tenants demonstrating reuse and
  eviction pressure flows to the lowest-value tenant (a shrink grant
  evicts immediately via ``StateCache.configure``).

Determinism: the fabric is driven *only* from inside runtime processes
(controller ticks, worker exits) on the shared discrete-event clock, its
tie-breaks are total orders (priority, arrival sequence, tenant name),
and it allocates no randomness — so two runs of the same fleet produce
byte-identical lease ledgers, grants, and stored outputs.  Per-feed
stored output is byte-identical fabric-on vs fabric-off because the
fabric changes only *pool size over time*, and the sequencer already
guarantees order-preserving release at any pool size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import IngestionError
from ..runtime.faults import FaultPlan

#: governor grants are quantized so tiny hit-ratio jitter doesn't churn
#: ``configure`` calls (and grant-log noise) every rebalance
GRANT_GRANULARITY_BYTES = 4096

#: base utility weight for a tenant with zero observed hits — keeps a
#: cold cache funded long enough to earn its first reuse
COLD_TENANT_WEIGHT = 0.25


@dataclass(frozen=True)
class FeedSignals:
    """One elastic-controller sample tick's congestion bid."""

    occupancy: float = 0.0  # intake-buffer holder occupancy [0, 1]
    backlog_batches: float = 0.0  # ready records / batch size
    producer_blocked: bool = False  # intake currently backpressured
    congested: bool = False  # the controller's own congestion verdict
    starved: bool = False  # the controller's own starvation verdict


@dataclass
class FeedLaunch:
    """One feed's slot in a multi-feed :meth:`AsterixLite.start_feeds` run."""

    feed: str
    adapter: object = None  # defaults to the feed's attached adapter
    batch_size: int = 420
    policy: object = None  # FeedPolicy override for this run
    fault_plan: Optional[FaultPlan] = None
    update_client: object = None
    balanced_intake: bool = False


def merge_fault_plans(
    plans: Sequence[Optional[FaultPlan]],
) -> Optional[FaultPlan]:
    """Concatenate per-feed fault plans into one run-wide plan.

    A shared multi-feed runtime installs exactly one plan, so per-feed
    plans are merged field-by-field.  Crash/stall targets should be
    feed-scoped process names (``feed-<name>.computing``) — a bare layer
    target (``'computing'``) in a merged plan matches *every* feed's
    actors, which is occasionally wanted (cluster-wide chaos) but rarely
    what a per-feed scenario means.
    """
    live = [p for p in plans if p is not None and not p.empty]
    if not live:
        return None
    if len(live) == 1:
        return live[0]
    return FaultPlan(
        crashes=[c for p in live for c in p.crashes],
        stalls=[s for p in live for s in p.stalls],
        channel_failures=[c for p in live for c in p.channel_failures],
        disconnects=[d for p in live for d in p.disconnects],
        adapter_failures=[a for p in live for a in p.adapter_failures],
        enricher_faults=[e for p in live for e in p.enricher_faults],
        seed=live[0].seed,
    )


class _WorkerTenant:
    """One feed's lease account inside the fabric."""

    __slots__ = (
        "name",
        "floor",
        "cap",
        "priority",
        "fair_share",
        "grow",
        "recall",
        "held",
        "peak_held",
        "recalls_outstanding",
        "pending_seq",
        "signals",
        "active",
        "leases_acquired",
        "leases_returned",
        "recalls_received",
        "timeline",
    )

    def __init__(self, name, policy, grow, recall):
        self.name = name
        self.floor = policy.min_computing_workers
        self.cap = policy.max_computing_workers
        self.priority = policy.priority
        self.fair_share = policy.fair_share
        self.grow = grow  # () -> None: spawn one worker now (a grant)
        self.recall = recall  # () -> bool: issue a retire token if safe
        self.held = 0
        self.peak_held = 0
        self.recalls_outstanding = 0
        self.pending_seq: Optional[int] = None  # arrival seq of queued bid
        self.signals: Optional[FeedSignals] = None
        self.active = True
        self.leases_acquired = 0
        self.leases_returned = 0
        self.recalls_received = 0
        self.timeline: List[Tuple[float, int]] = []  # (sim_s, held)


class _CacheTenant:
    """One governed cache's account inside the memory governor."""

    __slots__ = ("feed", "kind", "cache", "priority", "fair_share",
                 "budget", "smoothed")

    def __init__(self, feed, kind, cache, priority, fair_share):
        self.feed = feed
        self.kind = kind  # 'state' | 'memo'
        self.cache = cache
        self.priority = priority
        self.fair_share = fair_share
        self.budget = 0
        self.smoothed: Optional[float] = None  # EWMA windowed hit ratio


class MemoryGovernor:
    """One cluster-wide cache budget arbitrated across tenant caches.

    Weights are ``priority × fair_share × (COLD_TENANT_WEIGHT + EWMA
    windowed hit ratio)``; budgets are the weight-proportional split of
    ``total_bytes`` quantized to :data:`GRANT_GRANULARITY_BYTES`, with
    the quantization remainder going to the heaviest tenant (stable
    tie-break by ``(feed, kind)``).  A shrink takes effect immediately —
    ``StateCache.configure`` evicts LRU-first down to the new grant —
    which is exactly "eviction pressure flows to the lowest-value
    tenant".
    """

    def __init__(self, total_bytes: int):
        if total_bytes <= 0:
            raise ValueError("MemoryGovernor needs a positive byte budget")
        self.total_bytes = int(total_bytes)
        self._tenants: List[_CacheTenant] = []
        self.rebalances = 0
        #: grant ledger: (sim_seconds, feed, cache_kind, granted_bytes)
        self.grants: List[Tuple[float, str, str, int]] = []

    def register(self, feed, kind, cache, priority, fair_share, now=0.0):
        entry = _CacheTenant(feed, kind, cache, priority, fair_share)
        self._tenants.append(entry)
        self.rebalance(now)
        return entry

    def deregister(self, feed, now: float = 0.0) -> None:
        before = len(self._tenants)
        self._tenants = [e for e in self._tenants if e.feed != feed]
        if self._tenants and len(self._tenants) != before:
            self.rebalance(now)

    def _weight(self, entry: _CacheTenant) -> float:
        utility = (
            entry.smoothed
            if entry.smoothed is not None
            else entry.cache.hit_ratio
        )
        return entry.priority * entry.fair_share * (
            COLD_TENANT_WEIGHT + utility
        )

    def rebalance(self, now: float) -> None:
        """Re-split the global budget by current tenant utility."""
        if not self._tenants:
            return
        self.rebalances += 1
        # Fold the just-ended observation window into each tenant's EWMA
        # before weighing — mid-run hit-ratio shifts move bytes within a
        # few batch boundaries instead of being damped by all of history.
        for entry in self._tenants:
            hits, misses = entry.cache.window_counts()
            if hits + misses > 0:
                ratio = hits / (hits + misses)
                entry.smoothed = (
                    ratio
                    if entry.smoothed is None
                    else 0.5 * entry.smoothed + 0.5 * ratio
                )
            entry.cache.mark_window()
        weights = [(self._weight(e), e) for e in self._tenants]
        total_weight = sum(w for w, _ in weights) or 1.0
        gran = GRANT_GRANULARITY_BYTES
        budgets: List[Tuple[_CacheTenant, int]] = []
        assigned = 0
        for weight, entry in weights:
            share = int(self.total_bytes * weight / total_weight)
            share = (share // gran) * gran
            budgets.append((entry, share))
            assigned += share
        leftover = self.total_bytes - assigned
        if leftover > 0:
            # heaviest tenant absorbs the quantization remainder
            top = max(
                weights, key=lambda pair: (pair[0], pair[1].feed, pair[1].kind)
            )[1]
            budgets = [
                (e, b + leftover if e is top else b) for e, b in budgets
            ]
        for entry, budget in budgets:
            if budget != entry.budget:
                entry.budget = budget
                entry.cache.configure(budget)
                self.grants.append((now, entry.feed, entry.kind, budget))

    # ----------------------------------------------------------- reporting

    def grants_for(self, feed: str) -> List[Tuple[float, str, int]]:
        """The feed's grant history: ``(sim_seconds, kind, bytes)``."""
        return [(t, kind, b) for t, f, kind, b in self.grants if f == feed]

    def summary(self) -> Dict[str, object]:
        return {
            "total_bytes": self.total_bytes,
            "rebalances": self.rebalances,
            "grants": len(self.grants),
            "tenants": {
                f"{e.feed}/{e.kind}": {
                    "budget_bytes": e.budget,
                    "resident_bytes": e.cache.current_bytes,
                    "entries": len(e.cache),
                    "hit_ratio": e.cache.hit_ratio,
                    "evictions": e.cache.evictions,
                }
                for e in sorted(
                    self._tenants, key=lambda e: (e.feed, e.kind)
                )
            },
        }


class FeedFabric:
    """The cluster-level worker-lease arbiter (plus optional governor).

    ``total_workers`` is the cluster's computing-worker budget; the sum
    of registered feeds' ``min_computing_workers`` floors must fit in
    it.  ``memory_bytes > 0`` additionally attaches a
    :class:`MemoryGovernor` arbitrating one cache budget across every
    governed feed (feeds whose policy enables a cache get *private*
    governor-sized instances instead of configuring the registry-shared
    singletons).

    A fabric arbitrates exactly one ``start_feeds`` run: its lease
    ledger, timelines, and governor grants are run artifacts, inspected
    after the run via :meth:`summary`/:meth:`tenant_report`.  Build a
    fresh fabric per run.
    """

    def __init__(self, total_workers: int, memory_bytes: int = 0):
        if total_workers < 1:
            raise ValueError("total_workers must be >= 1")
        self.total_workers = int(total_workers)
        self.governor = (
            MemoryGovernor(memory_bytes) if memory_bytes > 0 else None
        )
        self._tenants: Dict[str, _WorkerTenant] = {}
        #: queued borrow requests as (-priority, arrival_seq, tenant name)
        self._queue: List[Tuple[int, int, str]] = []
        self._seq = 0
        self._runtime = None
        self.used = False
        #: lease ledger: (sim_s, feed, event, feed_held, total_held) where
        #: event is floor|acquire|grant|recall|release|deregister
        self.lease_events: List[Tuple[float, str, str, int, int]] = []
        self.leases_granted = 0
        self.recalls_issued = 0
        self.peak_total_held = 0

    # ------------------------------------------------------------ lifecycle

    def bind(self, runtime) -> None:
        """Attach the run's shared runtime (for lease timestamps)."""
        if self.used:
            raise IngestionError(
                "a FeedFabric arbitrates one run; build a fresh fabric "
                "for a new run"
            )
        self.used = True
        self._runtime = runtime

    def validate(self, policies: Sequence[Tuple[str, object]]) -> None:
        """Reject fleets whose worker floors exceed the global budget."""
        floors = sum(policy.min_computing_workers for _, policy in policies)
        if floors > self.total_workers:
            raise IngestionError(
                f"feed worker floors sum to {floors}, exceeding the "
                f"fabric's total_workers budget of {self.total_workers}"
            )

    def register_feed(
        self,
        name: str,
        policy,
        grow: Optional[Callable[[], None]] = None,
        recall: Optional[Callable[[], bool]] = None,
    ) -> None:
        """Enroll one feed's pool: its bounds, knobs, and pool hooks."""
        if name in self._tenants:
            raise IngestionError(f"feed {name!r} already registered")
        self._tenants[name] = _WorkerTenant(name, policy, grow, recall)

    def register_cache(self, name: str, cache, policy) -> None:
        """Enroll one feed's private cache with the governor."""
        if self.governor is None:
            raise IngestionError("this fabric has no memory governor")
        self.governor.register(
            name, cache.kind, cache, policy.priority, policy.fair_share,
            now=self._now(),
        )

    def note_initial(self, name: str, count: int) -> None:
        """Account a feed's floor workers spawned at launch."""
        tenant = self._tenants[name]
        tenant.held += count
        self._record(tenant, "floor")
        if self.total_held > self.total_workers:
            raise IngestionError(
                f"feed floors exceed the fabric worker budget "
                f"({self.total_held} > {self.total_workers})"
            )

    def deregister_feed(self, name: str) -> None:
        """The feed's run is over: drop its bid, free any held leases."""
        tenant = self._tenants.get(name)
        if tenant is None:
            return
        tenant.active = False
        tenant.pending_seq = None
        tenant.recalls_outstanding = 0
        # an aborted feed may exit with workers never individually
        # released; return them to the pool wholesale
        tenant.held = 0
        self._record(tenant, "deregister")
        if self.governor is not None:
            self.governor.deregister(name, now=self._now())
        self._grant_pending()

    # ------------------------------------------------------------- bidding

    def tick(self, name: str, signals: FeedSignals) -> None:
        """One controller sample tick: refresh this feed's standing bid."""
        tenant = self._tenants[name]
        tenant.signals = signals
        if tenant.pending_seq is not None and (
            not signals.congested or tenant.held >= tenant.cap
        ):
            # congestion cleared (or the cap closed) while queued
            tenant.pending_seq = None
            self._queue = [q for q in self._queue if q[2] != name]
        # Self-healing: a victim's own controller may cancel a pending
        # retire (eating the recall token).  When bids outnumber live
        # recalls and nothing is spare, issue another.
        if (
            self._queue
            and self.spare == 0
            and self._outstanding_recalls() < len(self._queue)
        ):
            self._issue_recall()

    def acquire(self, name: str) -> bool:
        """A congested feed's grow request: fund it now or queue the bid.

        Returns True when the grow is funded immediately (the caller
        spawns the worker); False when the bid is queued — the fabric
        calls the feed's ``grow`` hook itself once a worker frees up.
        """
        tenant = self._tenants[name]
        if tenant.held >= tenant.cap:
            return False
        if self.spare > 0:
            tenant.held += 1
            tenant.leases_acquired += 1
            self.leases_granted += 1
            self._record(tenant, "acquire")
            return True
        if tenant.pending_seq is None:
            tenant.pending_seq = self._seq
            self._queue.append((-tenant.priority, self._seq, name))
            self._seq += 1
        if self._outstanding_recalls() < len(self._queue):
            self._issue_recall(exclude=name)
        return False

    def release_worker(self, name: str) -> None:
        """A worker exited (EOF drain or recalled retire): free its slot."""
        tenant = self._tenants[name]
        if tenant.held <= 0:
            return
        tenant.held -= 1
        tenant.leases_returned += 1
        if tenant.recalls_outstanding > 0:
            tenant.recalls_outstanding -= 1
        self._record(tenant, "release")
        self._grant_pending()

    def note_shrink_cancelled(self, name: str) -> None:
        """The feed's controller cancelled a pending retire; if a fabric
        recall was riding that token, it is no longer in flight."""
        tenant = self._tenants.get(name)
        if tenant is not None and tenant.recalls_outstanding > 0:
            tenant.recalls_outstanding -= 1

    def note_batch_released(self, name: str) -> None:
        """A batch boundary: the governor's rebalance point."""
        if self.governor is not None:
            self.governor.rebalance(self._now())

    # ------------------------------------------------------------ internals

    @property
    def total_held(self) -> int:
        return sum(t.held for t in self._tenants.values())

    @property
    def spare(self) -> int:
        return self.total_workers - self.total_held

    def _now(self) -> float:
        if self._runtime is None:
            return 0.0
        return self._runtime.clock.now - self._runtime.epoch

    def _record(self, tenant: _WorkerTenant, event: str) -> None:
        tenant.peak_held = max(tenant.peak_held, tenant.held)
        total = self.total_held
        self.peak_total_held = max(self.peak_total_held, total)
        now = self._now()
        tenant.timeline.append((now, tenant.held))
        self.lease_events.append((now, tenant.name, event, tenant.held, total))

    def _outstanding_recalls(self) -> int:
        return sum(t.recalls_outstanding for t in self._tenants.values())

    def _issue_recall(self, exclude: Optional[str] = None) -> bool:
        """Ask the best victim to retire one worker at its next batch
        boundary.  The victim's ``recall`` hook re-checks its live pool
        (running minus already-pending retires vs its floor) and refuses
        unsafe recalls, so floors hold even against concurrent shrink
        tokens from the victim's own controller.
        """
        candidates = [
            t
            for t in self._tenants.values()
            if t.active
            and t.name != exclude
            and t.recall is not None
            and t.pending_seq is None
            and t.held - t.recalls_outstanding > t.floor
            and (t.signals is None or not t.signals.congested)
        ]
        # prefer explicitly starved tenants, then lowest priority, then
        # most slack above floor; tenant name as the total-order tiebreak
        candidates.sort(
            key=lambda t: (
                0 if (t.signals is not None and t.signals.starved) else 1,
                t.priority,
                -(t.held - t.recalls_outstanding - t.floor),
                t.name,
            )
        )
        for tenant in candidates:
            if tenant.recall():
                tenant.recalls_outstanding += 1
                tenant.recalls_received += 1
                self.recalls_issued += 1
                self.lease_events.append(
                    (
                        self._now(),
                        tenant.name,
                        "recall",
                        tenant.held,
                        self.total_held,
                    )
                )
                return True
        return False

    def _grant_pending(self) -> None:
        """Fund queued bids from spare capacity, best bid first."""
        while self.spare > 0 and self._queue:
            self._queue.sort()  # (-priority, arrival seq, name)
            _neg_priority, seq, name = self._queue.pop(0)
            tenant = self._tenants.get(name)
            if (
                tenant is None
                or not tenant.active
                or tenant.pending_seq != seq
            ):
                continue  # stale bid (cancelled or re-queued)
            tenant.pending_seq = None
            if tenant.held >= tenant.cap:
                continue
            if tenant.signals is not None and not tenant.signals.congested:
                continue  # congestion cleared while queued
            tenant.held += 1
            tenant.leases_acquired += 1
            self.leases_granted += 1
            self._record(tenant, "grant")
            if tenant.grow is not None:
                tenant.grow()

    # ------------------------------------------------------------ reporting

    def tenant_report(self, name: str) -> Dict[str, object]:
        tenant = self._tenants[name]
        return {
            "floor": tenant.floor,
            "cap": tenant.cap,
            "priority": tenant.priority,
            "fair_share": tenant.fair_share,
            "peak_held": tenant.peak_held,
            "borrowed_workers": max(0, tenant.peak_held - tenant.floor),
            "leases_acquired": tenant.leases_acquired,
            "leases_returned": tenant.leases_returned,
            "recalls_received": tenant.recalls_received,
            "lease_timeline": list(tenant.timeline),
        }

    def governor_grants_for(self, name: str) -> List[Tuple[float, str, int]]:
        if self.governor is None:
            return []
        return self.governor.grants_for(name)

    def summary(self) -> Dict[str, object]:
        return {
            "total_workers": self.total_workers,
            "peak_total_held": self.peak_total_held,
            "leases_granted": self.leases_granted,
            "recalls_issued": self.recalls_issued,
            "governor": (
                self.governor.summary() if self.governor is not None else None
            ),
            "tenants": {
                name: self.tenant_report(name)
                for name in sorted(self._tenants)
            },
        }
