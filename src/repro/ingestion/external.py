"""External enrichment: resilient batched clients for remote lookups.

The paper's enrichment UDFs resolve against locally-stored reference data.
Production enrichment pipelines instead call *out* — geo/IP/reputation
lookups against slow, rate-limited, flaky third-party APIs — and the feed
must survive the call failing.  This module brings that world onto the
discrete-event clock, deterministically:

* :class:`ExternalEnricher` — a simulated remote lookup service.  Latency
  is a seeded function of the call counter (no live RNG), and outages,
  slowdowns, and flakiness are scripted via
  :class:`~repro.runtime.faults.EnricherOutage` /
  :class:`~repro.runtime.faults.EnricherSlowdown` /
  :class:`~repro.runtime.faults.EnricherFlaky` entries on the feed's
  :class:`~repro.runtime.faults.FaultPlan`, so two runs with the same plan
  produce byte-identical call logs and counters.

* :class:`EnrichmentCoordinator` — what the feed's computing stage routes
  external probe keys through, per batch: dedupe keys (an API hit per
  *distinct* key, not per record), chunk them into batched calls, fan out
  across ``external_concurrency`` simulated lanes, and wrap every call in
  the full resilience stack — per-call deadline, retries with exponential
  backoff + deterministic jitter, a client-side token-bucket rate limiter,
  and a per-enricher circuit breaker (closed → open → half-open with probe
  requests).  All knobs live on :class:`~repro.ingestion.policy.FeedPolicy`.

Failures degrade progressively instead of stalling ingestion
(:class:`~repro.ingestion.policy.ExternalFailureAction`): after the retry
budget a record is stored with a null enrichment plus a
``_enrichment_pending`` marker, dead-lettered with provenance, or — only
on request — escalated.  :func:`backfill_pending` is the catch-up pass:
once the remote recovers it re-probes stored pending records and clears
their markers, driving ``enrichment_completeness`` back to 1.0.
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import ExternalEnrichmentError, IngestionError
from ..runtime.faults import FaultPlan
from ..runtime.metrics import ExternalMetrics
from ..sqlpp.memo import EXTERNAL_VERSION_KEY, canonical_probe_key
from .policy import DEFAULT_POLICY, ExternalFailureAction, FeedPolicy

#: marker field on stored records whose enrichment is not yet resolved;
#: holds the list of still-pending binding labels (``enricher:field``)
PENDING_FIELD = "_enrichment_pending"


def _fraction(*material) -> float:
    """Deterministic pseudo-random fraction in [0, 1) from the material.

    crc32-based so it is stable across processes and platforms —
    Python's ``hash()`` is salted per process and would break
    byte-identical repeats.
    """
    text = ":".join(str(part) for part in material)
    return (zlib.crc32(text.encode("utf-8")) & 0xFFFFFFFF) / 4294967296.0


# --------------------------------------------------------------- the remote


@dataclass(frozen=True)
class CallResult:
    """One enricher call's outcome as observed by the client."""

    outcome: str  # 'ok' | 'error' | 'timeout' | 'rate_limited'
    latency: float  # simulated seconds the call took
    results: Optional[Dict] = None  # key -> enrichment value (ok only)
    retry_after: float = 0.0  # server hint on rate_limited


class ExternalEnricher:
    """A simulated remote lookup service on the discrete-event clock.

    ``lookup`` maps one probe key to its enrichment value (pure and
    deterministic; defaults to a stub that tags the key).  Latency is
    ``base + per_key * len(keys)`` scaled by any scripted slowdown and
    stretched by up to ``latency_jitter`` of seeded jitter.  Fault
    behavior comes entirely from the :class:`FaultPlan` passed per call.
    """

    def __init__(
        self,
        name: str,
        lookup: Optional[Callable[[object], object]] = None,
        base_latency_seconds: float = 0.005,
        per_key_latency_seconds: float = 0.0005,
        latency_jitter: float = 0.25,
        error_latency_seconds: float = 0.001,
        seed: int = 0,
    ):
        self.name = name
        self.lookup = lookup or (lambda key: {"enriched_by": name, "key": key})
        self.base_latency_seconds = base_latency_seconds
        self.per_key_latency_seconds = per_key_latency_seconds
        self.latency_jitter = latency_jitter
        self.error_latency_seconds = error_latency_seconds
        self.seed = seed
        self.calls = 0
        #: ``(start_time, outcome, latency)`` per call, in call order —
        #: the determinism tests compare whole logs across runs
        self.call_log: List[Tuple[float, str, float]] = []

    def _u(self, index: int, salt: str) -> float:
        return _fraction(self.name, self.seed, index, salt)

    def call(
        self,
        keys: Sequence[object],
        now: float,
        deadline: float,
        fault_plan: Optional[FaultPlan] = None,
    ) -> CallResult:
        """Issue one batched lookup starting at simulated time ``now``."""
        index = self.calls
        self.calls += 1
        outcome = "ok"
        retry_after = 0.0
        factor = 1.0
        if fault_plan is not None:
            outage = fault_plan.enricher_outage(self.name, now)
            if outage is not None:
                outcome = outage.mode
                retry_after = outage.retry_after_seconds
            else:
                flaky = fault_plan.enricher_flaky(self.name, now)
                if flaky is not None and self._u(index, "flaky") < flaky.rate:
                    outcome = flaky.mode
            if outcome == "rate_limit":  # fault-plan mode -> call outcome
                outcome = "rate_limited"
            factor = fault_plan.enricher_latency_factor(self.name, now)
        if outcome == "error":
            result = CallResult("error", self.error_latency_seconds)
        elif outcome == "rate_limited":
            result = CallResult(
                "rate_limited", self.error_latency_seconds, retry_after=retry_after
            )
        else:
            latency = (
                self.base_latency_seconds
                + self.per_key_latency_seconds * len(keys)
            ) * factor
            latency *= 1.0 + self.latency_jitter * self._u(index, "latency")
            if outcome == "timeout" or latency > deadline:
                result = CallResult("timeout", deadline)
            else:
                result = CallResult(
                    "ok", latency, results={key: self.lookup(key) for key in keys}
                )
        self.call_log.append((now, result.outcome, result.latency))
        return result


@dataclass
class EnricherBinding:
    """Route ``record[key_field]`` through ``enricher`` into
    ``record[output_field]``.  Records without the key field (or with a
    null key) pass through untouched."""

    enricher: ExternalEnricher
    key_field: str
    output_field: str

    @property
    def label(self) -> str:
        """Stable identity used in ``_enrichment_pending`` markers."""
        return f"{self.enricher.name}:{self.output_field}"


# ---------------------------------------------------------- resilience stack


class CircuitBreaker:
    """Per-enricher breaker: closed → open → half-open, on the sim clock.

    ``failure_threshold`` consecutive call failures open the breaker;
    while open every chunk fails fast (no remote call, no deadline
    burned).  After ``reset_seconds`` the breaker half-opens and admits
    ``half_open_probes`` probe calls: a probe success closes it, a probe
    failure re-opens it for another cool-off.  ``failure_threshold == 0``
    disables the breaker entirely.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(
        self,
        enricher_name: str,
        failure_threshold: int,
        reset_seconds: float,
        half_open_probes: int,
        metrics: ExternalMetrics,
    ):
        self.enricher_name = enricher_name
        self.failure_threshold = failure_threshold
        self.reset_seconds = reset_seconds
        self.half_open_probes = max(1, half_open_probes)
        self.metrics = metrics
        self.state = self.CLOSED
        self.consecutive_failures = 0
        self.open_until = 0.0
        self.probes_left = 0
        #: ``(sim_time, state)`` per transition — byte-identical across
        #: identical runs, and what the bench's recovery check inspects
        self.transitions: List[Tuple[float, str]] = [(0.0, self.CLOSED)]

    @property
    def enabled(self) -> bool:
        return self.failure_threshold > 0

    def _transition(self, now: float, state: str) -> None:
        self.state = state
        self.transitions.append((now, state))

    def allow(self, now: float) -> bool:
        """May a call start at ``now``?  Moves open → half-open when due."""
        if not self.enabled or self.state == self.CLOSED:
            return True
        if self.state == self.OPEN:
            if now < self.open_until:
                return False
            self._transition(now, self.HALF_OPEN)
            self.metrics.breaker_half_opens += 1
            self.probes_left = self.half_open_probes
        if self.probes_left > 0:
            self.probes_left -= 1
            return True
        return False

    def on_success(self, now: float) -> None:
        self.consecutive_failures = 0
        if self.enabled and self.state != self.CLOSED:
            self._transition(now, self.CLOSED)
            self.metrics.breaker_closes += 1

    def on_failure(self, now: float) -> None:
        if not self.enabled:
            return
        if self.state == self.HALF_OPEN:
            self._open(now)
            return
        self.consecutive_failures += 1
        if self.state == self.CLOSED and (
            self.consecutive_failures >= self.failure_threshold
        ):
            self._open(now)

    def _open(self, now: float) -> None:
        self._transition(now, self.OPEN)
        self.metrics.breaker_opens += 1
        self.open_until = now + self.reset_seconds
        self.consecutive_failures = 0


class TokenBucket:
    """Deterministic client-side rate limiter (GCRA virtual scheduling).

    ``reserve(now)`` returns the earliest conforming start time at or
    after ``now`` for the next call and books it — pure arithmetic on a
    virtual clock, so pacing is byte-identical across runs.
    """

    def __init__(self, rate_per_second: float, burst: int):
        self.interval = 1.0 / rate_per_second
        self.tolerance = max(0, burst - 1) * self.interval
        self._tat = 0.0  # theoretical arrival time of the next call

    def reserve(self, now: float) -> float:
        start = max(now, self._tat - self.tolerance)
        self._tat = max(self._tat, start) + self.interval
        return start


# ------------------------------------------------------------- coordinator


class EnrichmentCoordinator:
    """Per-batch external fan-out with the full resilience stack.

    One coordinator lives for a feed run (breakers and rate limiters
    carry state *across* batches); :meth:`enrich_batch` is called by the
    computing stage with a batch's output records and the batch's start
    time, mutates the records in place, and returns the simulated seconds
    the external fan-out added to the batch's makespan.
    """

    def __init__(
        self,
        bindings: Sequence[EnricherBinding],
        policy: FeedPolicy,
        fault_plan: Optional[FaultPlan] = None,
        dead_letters=None,
        feed_name: str = "",
        primary_key: str = "id",
        metrics: Optional[ExternalMetrics] = None,
        memo=None,
    ):
        self.bindings = list(bindings)
        self.policy = policy
        self.fault_plan = fault_plan
        self.dead_letters = dead_letters
        self.feed_name = feed_name
        self.primary_key = primary_key
        self.metrics = metrics if metrics is not None else ExternalMetrics()
        #: optional cross-batch EnrichmentMemo: an L2 hit on a canonical
        #: probe key skips the remote call entirely — no lane time, no
        #: rate-limit token, no breaker budget.  Only ``"ok"`` outcomes
        #: are ever memoized, so pending/failed keys stay re-probable and
        #: :func:`backfill_pending` semantics survive.
        self.memo = memo
        #: record pk -> 'enriched' | 'pending' | 'dead_lettered'.  Keyed by
        #: primary key so at-least-once batch replays after a crash update
        #: the outcome instead of double-counting the record.
        self._outcomes: Dict[object, str] = {}
        self._breakers: Dict[str, CircuitBreaker] = {}
        self._buckets: Dict[str, Optional[TokenBucket]] = {}
        for binding in self.bindings:
            name = binding.enricher.name
            if name in self._breakers:
                continue
            self._breakers[name] = CircuitBreaker(
                name,
                policy.external_breaker_failures,
                policy.external_breaker_reset_seconds,
                policy.external_breaker_half_open_probes,
                self.metrics,
            )
            rate = policy.external_rate_limit_per_second
            self._buckets[name] = (
                TokenBucket(rate, policy.external_rate_limit_burst)
                if rate > 0
                else None
            )

    def breaker(self, enricher_name: str) -> CircuitBreaker:
        return self._breakers[enricher_name]

    @property
    def breaker_transitions(self) -> Dict[str, List[Tuple[float, str]]]:
        return {
            name: list(breaker.transitions)
            for name, breaker in self._breakers.items()
        }

    # ------------------------------------------------------------- fan-out

    def enrich_batch(
        self, outputs: List[List[dict]], now: float, only_pending: bool = False
    ) -> float:
        """Enrich one batch's records in place; returns elapsed sim seconds.

        ``outputs`` is the batch's list of record lists (mutated: values
        stored, pending markers added, dead-lettered records removed).
        ``only_pending`` restricts probing to enrichments listed in a
        record's existing pending marker — the backfill mode.
        """
        if not self.bindings:
            return 0.0
        elapsed = 0.0
        memo = self.memo
        resolved: List[Dict[object, Tuple[str, object]]] = []
        for binding in self.bindings:
            # Dedup on the canonical probe key: one remote hit per distinct
            # key per batch (L1), minus any key the cross-batch memo (L2)
            # already resolved — those never reach the fetch stage at all.
            keys: List[Tuple[object, object]] = []
            seen = set()
            memoized: Dict[object, Tuple[str, object]] = {}
            for records in outputs:
                for record in records:
                    raw = self._probe_key(record, binding, only_pending)
                    if raw is None:
                        continue
                    ck = canonical_probe_key(raw)
                    if ck in seen:
                        continue
                    seen.add(ck)
                    if memo is not None:
                        entry = memo.get(
                            ("external", binding.label, ck),
                            EXTERNAL_VERSION_KEY,
                        )
                        if entry is not None:
                            memoized[ck] = ("ok", entry.value)
                            continue
                    keys.append((ck, raw))
            results, binding_elapsed = self._fetch(binding, keys, now + elapsed)
            if memo is not None:
                for ck, (outcome, value) in results.items():
                    if outcome == "ok":
                        memo.put(
                            ("external", binding.label, ck),
                            EXTERNAL_VERSION_KEY,
                            value,
                            1,
                        )
                results.update(memoized)
            elapsed += binding_elapsed
            resolved.append(results)
        for records in outputs:
            kept = []
            for record in records:
                if self._apply(record, resolved, only_pending):
                    kept.append(record)
            records[:] = kept
        return elapsed

    def _probe_key(
        self, record: dict, binding: EnricherBinding, only_pending: bool
    ) -> Optional[object]:
        if only_pending and binding.label not in record.get(PENDING_FIELD, ()):
            return None
        return record.get(binding.key_field)

    def _fetch(
        self,
        binding: EnricherBinding,
        keys: List[Tuple[object, object]],
        now: float,
    ) -> Tuple[Dict[object, Tuple[str, object]], float]:
        """Resolve deduped ``(canonical, raw)`` keys through one enricher.

        Raw keys go over the wire (the remote sees what the record holds);
        results come back keyed by the canonical form, which is what
        :meth:`_apply` and the memo look up.
        """
        results: Dict[object, Tuple[str, object]] = {}
        if not keys:
            return results, 0.0
        policy = self.policy
        enricher = binding.enricher
        breaker = self._breakers[enricher.name]
        bucket = self._buckets[enricher.name]
        chunk_size = policy.external_chunk_size
        chunks = [
            keys[i : i + chunk_size] for i in range(0, len(keys), chunk_size)
        ]
        # Bounded concurrency as lane simulation: each lane is the sim time
        # it frees up; a chunk runs on the earliest-free lane (lowest index
        # on ties), and the fan-out's elapsed time is the latest lane.
        lanes = [now] * policy.external_concurrency
        for chunk in chunks:
            lane = min(range(len(lanes)), key=lambda i: (lanes[i], i))
            raw_chunk = [raw for _ck, raw in chunk]
            outcome, values, freed = self._call_with_retries(
                enricher, breaker, bucket, raw_chunk, lanes[lane]
            )
            lanes[lane] = freed
            for ck, raw in chunk:
                if outcome == "ok":
                    results[ck] = ("ok", values[raw])
                else:
                    results[ck] = (outcome, None)
        return results, max(lanes) - now

    def _call_with_retries(self, enricher, breaker, bucket, chunk, t):
        """One chunk through deadline + retry/backoff + limiter + breaker."""
        policy = self.policy
        metrics = self.metrics
        attempt = 0
        while True:
            if not breaker.allow(t):
                metrics.fail_fast += 1
                return "breaker_open", None, t
            start = t
            if bucket is not None:
                start = bucket.reserve(t)
                metrics.rate_limit_wait_seconds += start - t
            result = enricher.call(
                chunk, start, policy.external_deadline_seconds, self.fault_plan
            )
            metrics.calls += 1
            metrics.keys_requested += len(chunk)
            metrics.call_seconds += result.latency
            t = start + result.latency
            if result.outcome == "ok":
                breaker.on_success(t)
                return "ok", result.results, t
            if result.outcome == "timeout":
                metrics.timeouts += 1
            elif result.outcome == "rate_limited":
                metrics.rate_limited += 1
            else:
                metrics.errors += 1
            breaker.on_failure(t)
            attempt += 1
            if attempt >= policy.external_max_attempts:
                return result.outcome, None, t
            backoff = min(
                policy.external_backoff_max_seconds,
                policy.external_backoff_initial_seconds
                * policy.external_backoff_multiplier ** (attempt - 1),
            )
            backoff *= 1.0 + policy.external_backoff_jitter * _fraction(
                enricher.name, enricher.seed, enricher.calls, "backoff"
            )
            backoff = max(backoff, result.retry_after)
            metrics.retries += 1
            metrics.backoff_seconds += backoff
            t += backoff

    # -------------------------------------------------- progressive fallback

    def _apply(self, record, resolved, only_pending) -> bool:
        """Store one record's enrichments; False drops it (dead-lettered)."""
        pending: List[str] = []
        errors: List[str] = []
        required = False
        for binding, results in zip(self.bindings, resolved):
            key = self._probe_key(record, binding, only_pending)
            if key is None:
                continue
            required = True
            outcome, value = results[canonical_probe_key(key)]
            if outcome == "ok":
                record[binding.output_field] = value
            else:
                record[binding.output_field] = None
                pending.append(binding.label)
                errors.append(f"{binding.label}: {outcome}")
        if only_pending:
            # Backfill pass: labels this pass's bindings did not cover stay
            # pending; covered labels survive only if they failed again.
            covered = {binding.label for binding in self.bindings}
            left = [
                label
                for label in record.get(PENDING_FIELD, [])
                if label not in covered
            ] + pending
            if left:
                record[PENDING_FIELD] = left
            else:
                record.pop(PENDING_FIELD, None)
            if required:
                self._note(record, "pending" if left else "enriched")
            return True
        if not required:
            return True
        if not pending:
            record.pop(PENDING_FIELD, None)
            self._note(record, "enriched")
            return True
        action = self.policy.external_on_failure
        if action is ExternalFailureAction.FAIL:
            raise ExternalEnrichmentError(
                self.feed_name,
                pending[0].split(":", 1)[0],
                self._record_key(record),
                "; ".join(errors),
            )
        if action is ExternalFailureAction.DEAD_LETTER and (
            self.dead_letters is not None
        ):
            self._dead_letter(record, pending, errors)
            self._note(record, "dead_lettered")
            return False
        record[PENDING_FIELD] = pending
        self._note(record, "pending")
        return True

    def _record_key(self, record: dict) -> object:
        key = record.get(self.primary_key)
        if key is not None:
            return key
        # Keyless record (shouldn't happen past storage validation): fall
        # back to its canonical probe-key form so dedup still holds — the
        # same normalization the memo and per-batch key dedup use, so two
        # field-order permutations of one record collapse to one key.
        return canonical_probe_key(record)

    def _note(self, record: dict, outcome: str) -> None:
        self._outcomes[self._record_key(record)] = outcome

    def _dead_letter(self, record, pending, errors) -> None:
        key = self._record_key(record)
        raw = {k: v for k, v in record.items() if k != PENDING_FIELD}
        self.dead_letters.upsert(
            {
                # Parsed records carry no adapter seq, so the stable
                # replay-dedup key is the record's own primary key.
                "dl_id": f"external#{key}",
                "feed": self.feed_name,
                "stage": "external",
                "seq": None,
                "raw": json.dumps(raw, sort_keys=True, default=str),
                "error": "; ".join(errors),
                "enrichers": list(pending),
            }
        )

    # ------------------------------------------------------------ reporting

    @property
    def completeness(self) -> float:
        """Fraction of enrichment-requiring records fully enriched."""
        total = len(self._outcomes)
        if total == 0:
            return 1.0
        enriched = sum(1 for o in self._outcomes.values() if o == "enriched")
        return enriched / total

    def finalize(self) -> ExternalMetrics:
        """Fold per-record outcomes into the metrics; returns them."""
        counts = {"enriched": 0, "pending": 0, "dead_lettered": 0}
        for outcome in self._outcomes.values():
            counts[outcome] += 1
        self.metrics.records_enriched = counts["enriched"]
        self.metrics.records_pending = counts["pending"]
        self.metrics.records_dead_lettered = counts["dead_lettered"]
        return self.metrics


# ---------------------------------------------------------------- backfill


@dataclass
class BackfillReport:
    """Result of one :func:`backfill_pending` catch-up pass."""

    feed_name: str
    dataset: str
    scanned: int  # stored records that carried the pending marker
    backfilled: int  # records whose pending enrichments all resolved
    still_pending: int
    simulated_seconds: float
    #: post-backfill completeness over the whole dataset
    completeness: float
    metrics: ExternalMetrics = field(default_factory=ExternalMetrics)


def enrichment_completeness(dataset, bindings) -> float:
    """Fraction of stored enrichment-requiring records fully enriched."""
    required = 0
    enriched = 0
    for record in dataset.scan():
        if not any(record.get(b.key_field) is not None for b in bindings):
            continue
        required += 1
        if not record.get(PENDING_FIELD):
            enriched += 1
    return enriched / required if required else 1.0


def backfill_pending(
    system,
    feed_name: str,
    bindings: Optional[Sequence[EnricherBinding]] = None,
    policy: Optional[FeedPolicy] = None,
    fault_plan: Optional[FaultPlan] = None,
    now: float = 0.0,
) -> BackfillReport:
    """Catch-up pass: re-probe stored ``_enrichment_pending`` records.

    Runs the same coordinator fan-out (deadlines, retries, rate limiting,
    a fresh closed breaker) over every stored record still carrying the
    marker, restricted to its pending enrichments, and upserts repaired
    records back.  With a healthy ``fault_plan`` (or none) this drives
    :func:`enrichment_completeness` back to 1.0.
    """
    state = system._feed(feed_name)
    resolved_policy = policy or state.policy or DEFAULT_POLICY
    resolved_bindings = list(
        bindings if bindings is not None else state.external_enrichers
    )
    if not resolved_bindings:
        raise IngestionError(
            f"feed {feed_name!r} has no external enrichers to backfill"
        )
    dataset = system.catalog[state.target_dataset]
    pending_rows = [
        dict(record) for record in dataset.scan() if record.get(PENDING_FIELD)
    ]
    pending_rows.sort(key=lambda r: str(r.get(dataset.primary_key)))
    memo = None
    registry = getattr(system, "registry", None)
    if resolved_policy.enrichment_memo_bytes > 0 and registry is not None:
        # The backfill pass shares the registry's cross-batch memo: keys the
        # live feed already resolved are reused, and keys the backfill
        # resolves warm the memo for subsequent batches.  Pending markers
        # themselves are never memoized, so every pending key re-probes.
        memo = registry.enrichment_memo
        memo.configure(resolved_policy.enrichment_memo_bytes)
    coordinator = EnrichmentCoordinator(
        resolved_bindings,
        resolved_policy,
        fault_plan=fault_plan,
        feed_name=feed_name,
        primary_key=dataset.primary_key,
        memo=memo,
    )
    outputs = [pending_rows]
    elapsed = coordinator.enrich_batch(outputs, now, only_pending=True)
    backfilled = 0
    for row in pending_rows:
        dataset.upsert(row)
        if not row.get(PENDING_FIELD):
            backfilled += 1
    coordinator.finalize()
    return BackfillReport(
        feed_name=feed_name,
        dataset=dataset.name,
        scanned=len(pending_rows),
        backfilled=backfilled,
        still_pending=len(pending_rows) - backfilled,
        simulated_seconds=elapsed,
        completeness=enrichment_completeness(dataset, resolved_bindings),
        metrics=coordinator.metrics,
    )
