"""Feed adapters: how external data enters the system (paper §2.3).

An adapter obtains/receives data from an external source as raw bytes and
arranges it into frames.  We provide:

* :class:`GeneratorAdapter` — wraps any iterator of raw JSON strings (the
  synthetic firehose used by the benchmarks);
* :class:`QueueAdapter` — a socket-feed stand-in: an external producer
  ``send()``s records, the feed drains them;
* :class:`FileAdapter` — replays newline-delimited JSON from a file.

Adapters yield *envelopes* ``{"raw": <json text>, "seq": <n>}``; ``seq``
is the adapter-local record sequence number (the file line number for a
:class:`FileAdapter`) and is the record's *provenance*: parse errors and
dead-letter entries carry it so the offending input can be identified.
Parsing into typed ADM records is a separate pipeline stage (coupled with
intake in the old framework, moved into the computing job in the new one).

A :class:`QueueAdapter` drained before ``end()`` yields the
:data:`ADAPTER_IDLE` sentinel instead of raising: under the discrete-event
runtime an empty-but-open queue is a *starved intake*, surfaced as idle
time (bounded by the feed policy's ``adapter_idle_timeout_seconds``), not
a crash.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, Iterator, List, Optional

from ..errors import FeedStateError


class _AdapterIdle:
    """Sentinel: the adapter has no data *right now* but has not ended."""

    def __repr__(self):
        return "<ADAPTER_IDLE>"


#: yielded by an adapter whose source is open but momentarily empty
ADAPTER_IDLE = _AdapterIdle()


class FeedAdapter:
    """Base adapter protocol: an iterator of raw-record envelopes."""

    def envelopes(
        self, resume_from: Optional[int] = None
    ) -> Iterator[Dict[str, object]]:
        """Iterate raw-record envelopes.

        ``resume_from`` re-opens the source after an adapter death: the
        iterator skips everything at or before that cursor (a value
        previously returned by :meth:`resume_position`), so a restarted
        intake actor continues exactly where the dead adapter stopped.
        """
        raise NotImplementedError

    def resume_position(self) -> int:
        """Cursor of the last envelope drawn (``0`` before any draw).

        Feed it back to :meth:`envelopes` as ``resume_from`` to continue a
        stream whose source died mid-fetch.  In-process adapters keep
        their position in live state, so the default cursor is simply the
        received-record count.
        """
        return getattr(self, "received", 0)

    def close(self) -> None:
        """Release external resources (no-op by default).

        Feed teardown calls this exactly once, even when the pipeline
        aborts mid-iteration.
        """


class GeneratorAdapter(FeedAdapter):
    """Adapter over an in-process generator of raw JSON strings."""

    def __init__(self, raw_records: Iterable[str]):
        self._source = iter(raw_records)
        self.received = 0

    def envelopes(
        self, resume_from: Optional[int] = None
    ) -> Iterator[Dict[str, object]]:
        # The underlying iterator holds its own position, so a re-open
        # simply continues it; ``resume_from`` is accepted for protocol
        # symmetry but needs no skipping.
        for raw in self._source:
            seq = self.received
            self.received += 1
            yield {"raw": raw, "seq": seq}


class QueueAdapter(FeedAdapter):
    """Socket-style adapter: producers push, the feed drains.

    ``send`` enqueues one raw record; ``end`` marks the stream complete.
    Iterating an empty-but-open queue yields :data:`ADAPTER_IDLE` — the
    feed runtime accounts the starvation as idle time and applies the
    policy's idle timeout, rather than crashing the pipeline.
    """

    def __init__(self):
        self._queue: deque = deque()
        self._ended = False
        self.received = 0

    def send(self, raw: str) -> None:
        if self._ended:
            raise FeedStateError("adapter already ended; cannot send more data")
        self._queue.append(raw)

    def send_many(self, raws: Iterable[str]) -> None:
        for raw in raws:
            self.send(raw)

    def end(self) -> None:
        self._ended = True

    @property
    def pending(self) -> int:
        return len(self._queue)

    def envelopes(
        self, resume_from: Optional[int] = None
    ) -> Iterator[Dict[str, object]]:
        # The queue only holds undrawn records (drawn ones were popped),
        # so a re-open resumes naturally; ``seq`` numbering continues from
        # the cursor.
        while True:
            if self._queue:
                seq = self.received
                self.received += 1
                yield {"raw": self._queue.popleft(), "seq": seq}
            elif self._ended:
                return
            else:
                yield ADAPTER_IDLE


class FileAdapter(FeedAdapter):
    """Replays newline-delimited JSON records from a file.

    ``seq`` on each envelope is the 1-based file line number.  The file
    handle is released when iteration completes, when the generator is
    closed mid-iteration (``GeneratorExit``), or when feed teardown calls
    :meth:`close` — whichever comes first.
    """

    def __init__(self, path: str):
        self.path = path
        self.received = 0
        self.last_line = 0  # resume cursor: line number last yielded
        self._handle = None

    def resume_position(self) -> int:
        """The 1-based line number of the last envelope drawn."""
        return self.last_line

    def envelopes(
        self, resume_from: Optional[int] = None
    ) -> Iterator[Dict[str, object]]:
        handle = open(self.path, "r", encoding="utf-8")
        self._handle = handle
        skip_through = resume_from or 0
        try:
            for line_number, line in enumerate(handle, start=1):
                if line_number <= skip_through:
                    continue  # already delivered before the re-open
                line = line.strip()
                if line:
                    self.received += 1
                    self.last_line = line_number
                    yield {"raw": line, "seq": line_number}
        finally:
            handle.close()
            if self._handle is handle:
                self._handle = None

    @property
    def is_open(self) -> bool:
        return self._handle is not None and not self._handle.closed

    def close(self) -> None:
        """Release the file handle if a pipeline aborted mid-iteration."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None


def drain_available(adapter: FeedAdapter) -> List[Dict[str, object]]:
    """Collect every envelope available *now*, stopping at the first idle.

    The static pipeline is synchronous: nothing can arrive after it starts
    draining, so an idle-but-open adapter simply contributes what it has.
    """
    envelopes: List[Dict[str, object]] = []
    for envelope in adapter.envelopes():
        if envelope is ADAPTER_IDLE:
            break
        envelopes.append(envelope)
    return envelopes


def chunked(iterator: Iterator, size: int) -> Iterator[List]:
    """Yield lists of up to ``size`` items from an iterator."""
    if size < 1:
        raise ValueError("chunk size must be >= 1")
    chunk: List = []
    for item in iterator:
        chunk.append(item)
        if len(chunk) >= size:
            yield chunk
            chunk = []
    if chunk:
        yield chunk
