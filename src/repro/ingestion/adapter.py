"""Feed adapters: how external data enters the system (paper §2.3).

An adapter obtains/receives data from an external source as raw bytes and
arranges it into frames.  We provide:

* :class:`GeneratorAdapter` — wraps any iterator of raw JSON strings (the
  synthetic firehose used by the benchmarks);
* :class:`QueueAdapter` — a socket-feed stand-in: an external producer
  ``send()``s records, the feed drains them;
* :class:`FileAdapter` — replays newline-delimited JSON from a file, and
  can :meth:`~FileAdapter.split` itself into contiguous line-range
  partitions for partitioned intake.

Adapters yield *envelopes* ``{"raw": <json text>, "seq": <n>}``; ``seq``
is the adapter-local record sequence number (the file line number for a
:class:`FileAdapter`) and is the record's *provenance*: parse errors and
dead-letter entries carry it so the offending input can be identified.
Parsing into typed ADM records is a separate pipeline stage (coupled with
intake in the old framework, moved into the computing job in the new one).

Resume convention: :meth:`~FeedAdapter.resume_position` returns a cursor
identifying the last envelope *drawn*; feeding it back to
:meth:`~FeedAdapter.envelopes` as ``resume_from`` skips everything at or
before that cursor.  For the count-based adapters the cursor is the
maximum ``seq`` delivered (``-1`` before any draw); a :class:`FileAdapter`
cursor is a ``(line, byte_offset)`` pair, so a re-open *seeks* — O(1) —
instead of re-scanning the file from its head.  An ``int`` ``resume_from``
(a ``seq`` watermark, e.g. from a durable checkpoint) is accepted by every
adapter and skips by sequence number.

A :class:`QueueAdapter` drained before ``end()`` yields the
:data:`ADAPTER_IDLE` sentinel instead of raising: under the discrete-event
runtime an empty-but-open queue is a *starved intake*, surfaced as idle
time (bounded by the feed policy's ``adapter_idle_timeout_seconds``), not
a crash.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, Iterator, List, Optional, Tuple, Union

from ..errors import FeedStateError

#: a resume cursor: a seq watermark, or an adapter-specific position pair
ResumeCursor = Union[int, Tuple[int, int], List[int], None]


class _AdapterIdle:
    """Sentinel: the adapter has no data *right now* but has not ended."""

    def __repr__(self):
        return "<ADAPTER_IDLE>"


#: yielded by an adapter whose source is open but momentarily empty
ADAPTER_IDLE = _AdapterIdle()


class FeedAdapter:
    """Base adapter protocol: an iterator of raw-record envelopes."""

    def envelopes(
        self, resume_from: ResumeCursor = None
    ) -> Iterator[Dict[str, object]]:
        """Iterate raw-record envelopes.

        ``resume_from`` re-opens the source after an adapter death or a
        durable run restart: the iterator skips everything at or before
        that cursor (a value previously returned by
        :meth:`resume_position`, or a plain ``seq`` watermark), so a
        restarted intake actor continues exactly where the dead adapter
        stopped.  Skipped-over duplicates are harmless anyway — storage
        dedupes replayed records by primary-key upsert.
        """
        raise NotImplementedError

    def resume_position(self) -> ResumeCursor:
        """Cursor of the last envelope drawn (``-1`` before any draw).

        Feed it back to :meth:`envelopes` as ``resume_from`` to continue a
        stream whose source died mid-fetch.  For count-based adapters the
        cursor is the maximum delivered ``seq``; subclasses may return a
        richer position (the :class:`FileAdapter` returns a
        ``(line, byte_offset)`` pair for O(1) seeks).
        """
        return getattr(self, "received", 0) - 1

    def close(self) -> None:
        """Release external resources.

        Idempotent: feed teardown and supervised re-opens may call this
        any number of times, including interleaved with fresh
        :meth:`envelopes` iterations.
        """


class GeneratorAdapter(FeedAdapter):
    """Adapter over an in-process generator of raw JSON strings."""

    def __init__(self, raw_records: Iterable[str]):
        self._source = iter(raw_records)
        self.received = 0

    def resume_position(self) -> int:
        """Maximum ``seq`` delivered so far (``-1`` before any draw)."""
        return self.received - 1

    def envelopes(
        self, resume_from: ResumeCursor = None
    ) -> Iterator[Dict[str, object]]:
        # A live re-open simply continues the underlying iterator (its
        # next item already has seq > resume_from); a *fresh* instance
        # over a replayed source skips everything at or below the cursor.
        skip = resume_from if resume_from is not None else -1
        for raw in self._source:
            seq = self.received
            self.received += 1
            if seq <= skip:
                continue
            yield {"raw": raw, "seq": seq}


class QueueAdapter(FeedAdapter):
    """Socket-style adapter: producers push, the feed drains.

    ``send`` enqueues one raw record; ``end`` marks the stream complete.
    Iterating an empty-but-open queue yields :data:`ADAPTER_IDLE` — the
    feed runtime accounts the starvation as idle time and applies the
    policy's idle timeout, rather than crashing the pipeline.
    """

    def __init__(self):
        self._queue: deque = deque()
        self._ended = False
        self.received = 0

    def send(self, raw: str) -> None:
        if self._ended:
            raise FeedStateError("adapter already ended; cannot send more data")
        self._queue.append(raw)

    def send_many(self, raws: Iterable[str]) -> None:
        for raw in raws:
            self.send(raw)

    def end(self) -> None:
        self._ended = True

    @property
    def pending(self) -> int:
        return len(self._queue)

    def resume_position(self) -> int:
        """Maximum ``seq`` delivered so far (``-1`` before any draw)."""
        return self.received - 1

    def envelopes(
        self, resume_from: ResumeCursor = None
    ) -> Iterator[Dict[str, object]]:
        # The queue only holds undrawn records (drawn ones were popped),
        # so a live re-open resumes naturally with monotonically
        # continuing seq numbers; a fresh instance whose producer replays
        # the stream from the start skips seqs at or below the cursor.
        skip = resume_from if resume_from is not None else -1
        while True:
            if self._queue:
                seq = self.received
                self.received += 1
                raw = self._queue.popleft()
                if seq <= skip:
                    continue
                yield {"raw": raw, "seq": seq}
            elif self._ended:
                return
            else:
                yield ADAPTER_IDLE


class FileAdapter(FeedAdapter):
    """Replays newline-delimited JSON records from a file.

    ``seq`` on each envelope is the 1-based file line number — globally
    unique provenance even when the file is :meth:`split` into partition
    ranges.  The adapter tracks the byte offset alongside the line number,
    so :meth:`resume_position` returns a ``(line, byte_offset)`` cursor
    and a re-open *seeks* straight to it (O(1)) instead of re-scanning
    from the file head.  A plain ``int`` ``resume_from`` (a line-number
    watermark from a durable checkpoint) is still accepted and skips by
    scanning the adapter's own range.

    The file handle is released when iteration completes, when the
    generator is closed mid-iteration (``GeneratorExit``), or when feed
    teardown calls :meth:`close` — whichever comes first; :meth:`close`
    is idempotent across supervised re-opens.
    """

    def __init__(
        self,
        path: str,
        start_line: int = 1,
        end_line: Optional[int] = None,
        start_offset: int = 0,
    ):
        self.path = path
        self.received = 0
        #: partition range: lines ``start_line..end_line`` inclusive
        #: (``end_line=None`` — to end of file), starting at byte
        #: ``start_offset``
        self.start_line = start_line
        self.end_line = end_line
        self.start_offset = start_offset
        self.last_line = start_line - 1  # line number last yielded
        self.last_offset = start_offset  # byte offset just past that line
        self._handle = None

    def resume_position(self) -> Tuple[int, int]:
        """``(line, byte_offset)`` of the last envelope drawn.

        ``line`` is the 1-based line number last yielded;
        ``byte_offset`` is the offset just past that line, so a re-open
        seeks there directly.
        """
        return (self.last_line, self.last_offset)

    def envelopes(
        self, resume_from: ResumeCursor = None
    ) -> Iterator[Dict[str, object]]:
        if isinstance(resume_from, (tuple, list)):
            # O(1) resume: seek to the cursor's byte offset
            line, offset = resume_from
            next_line = int(line) + 1
            start_offset = int(offset)
            skip_through = 0
        else:
            next_line = self.start_line
            start_offset = self.start_offset
            skip_through = int(resume_from or 0)
        # Binary mode: text-mode files forbid tell() during iteration, and
        # byte offsets are what make the resume cursor seekable.
        handle = open(self.path, "rb")
        self._handle = handle
        handle.seek(start_offset)
        offset = start_offset
        line_number = next_line - 1
        try:
            for raw_line in handle:
                line_number += 1
                offset += len(raw_line)
                if self.end_line is not None and line_number > self.end_line:
                    break
                if line_number <= skip_through:
                    continue  # already delivered before the re-open
                line = raw_line.decode("utf-8").strip()
                if line:
                    self.received += 1
                    self.last_line = line_number
                    self.last_offset = offset
                    yield {"raw": line, "seq": line_number}
        finally:
            handle.close()
            if self._handle is handle:
                self._handle = None

    def split(self, num_partitions: int) -> List["FileAdapter"]:
        """Split this adapter into ``num_partitions`` contiguous ranges.

        One counting scan computes balanced line ranges and each range's
        starting byte offset, so every partition adapter opens directly at
        its own range (no per-partition re-scan).  ``seq`` numbers remain
        global file line numbers, so provenance and the per-partition
        resume watermarks stay unambiguous across partitions.
        """
        if num_partitions < 1:
            raise ValueError("num_partitions must be >= 1")
        offsets = [self.start_offset]
        with open(self.path, "rb") as handle:
            handle.seek(self.start_offset)
            for raw_line in handle:
                offsets.append(offsets[-1] + len(raw_line))
        total = len(offsets) - 1
        if self.end_line is not None:
            total = min(total, self.end_line - self.start_line + 1)
        parts: List[FileAdapter] = []
        for p in range(num_partitions):
            lo = (total * p) // num_partitions  # covers lines lo+1..hi
            hi = (total * (p + 1)) // num_partitions
            parts.append(
                FileAdapter(
                    self.path,
                    start_line=self.start_line + lo,
                    end_line=self.start_line + hi - 1,
                    start_offset=offsets[lo],
                )
            )
        if parts:
            parts[-1].end_line = (
                self.end_line  # unbounded tail unless this range was bounded
            )
        return parts

    @property
    def is_open(self) -> bool:
        return self._handle is not None and not self._handle.closed

    def close(self) -> None:
        """Release the file handle if a pipeline aborted mid-iteration."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None


def drain_available(adapter: FeedAdapter) -> List[Dict[str, object]]:
    """Collect every envelope available *now*, stopping at the first idle.

    The static pipeline is synchronous: nothing can arrive after it starts
    draining, so an idle-but-open adapter simply contributes what it has.
    """
    envelopes: List[Dict[str, object]] = []
    for envelope in adapter.envelopes():
        if envelope is ADAPTER_IDLE:
            break
        envelopes.append(envelope)
    return envelopes


def chunked(iterator: Iterator, size: int) -> Iterator[List]:
    """Yield lists of up to ``size`` items from an iterator."""
    if size < 1:
        raise ValueError("chunk size must be >= 1")
    chunk: List = []
    for item in iterator:
        chunk.append(item)
        if len(chunk) >= size:
            yield chunk
            chunk = []
    if chunk:
        yield chunk
