"""Feed adapters: how external data enters the system (paper §2.3).

An adapter obtains/receives data from an external source as raw bytes and
arranges it into frames.  We provide:

* :class:`GeneratorAdapter` — wraps any iterator of raw JSON strings (the
  synthetic firehose used by the benchmarks);
* :class:`QueueAdapter` — a socket-feed stand-in: an external producer
  ``send()``s records, the feed drains them;
* :class:`FileAdapter` — replays newline-delimited JSON from a file.

Adapters yield *envelopes* ``{"raw": <json text>}``; parsing into typed ADM
records is a separate pipeline stage (coupled with intake in the old
framework, moved into the computing job in the new one).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, Iterator, List

from ..errors import FeedStateError


class FeedAdapter:
    """Base adapter protocol: an iterator of raw-record envelopes."""

    def envelopes(self) -> Iterator[Dict[str, str]]:
        raise NotImplementedError

    def close(self) -> None:
        """Release external resources (no-op by default)."""


class GeneratorAdapter(FeedAdapter):
    """Adapter over an in-process generator of raw JSON strings."""

    def __init__(self, raw_records: Iterable[str]):
        self._source = iter(raw_records)
        self.received = 0

    def envelopes(self) -> Iterator[Dict[str, str]]:
        for raw in self._source:
            self.received += 1
            yield {"raw": raw}


class QueueAdapter(FeedAdapter):
    """Socket-style adapter: producers push, the feed drains.

    ``send`` enqueues one raw record; ``end`` marks the stream complete.
    Iterating past the current queue contents before ``end`` raises — the
    orchestrator must only pull what has arrived.
    """

    def __init__(self):
        self._queue: deque = deque()
        self._ended = False
        self.received = 0

    def send(self, raw: str) -> None:
        if self._ended:
            raise FeedStateError("adapter already ended; cannot send more data")
        self._queue.append(raw)

    def send_many(self, raws: Iterable[str]) -> None:
        for raw in raws:
            self.send(raw)

    def end(self) -> None:
        self._ended = True

    @property
    def pending(self) -> int:
        return len(self._queue)

    def envelopes(self) -> Iterator[Dict[str, str]]:
        while True:
            if self._queue:
                self.received += 1
                yield {"raw": self._queue.popleft()}
            elif self._ended:
                return
            else:
                raise FeedStateError(
                    "queue adapter drained before end(); push data or end the feed"
                )


class FileAdapter(FeedAdapter):
    """Replays newline-delimited JSON records from a file."""

    def __init__(self, path: str):
        self.path = path
        self.received = 0

    def envelopes(self) -> Iterator[Dict[str, str]]:
        with open(self.path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    self.received += 1
                    yield {"raw": line}


def chunked(iterator: Iterator, size: int) -> Iterator[List]:
    """Yield lists of up to ``size`` items from an iterator."""
    if size < 1:
        raise ValueError("chunk size must be >= 1")
    chunk: List = []
    for item in iterator:
        chunk.append(item)
        if len(chunk) >= size:
            yield chunk
            chunk = []
    if chunk:
        yield chunk
