"""The IDEA ingestion framework: static vs dynamic pipelines, feeds, AFM."""

from .adapter import FeedAdapter, FileAdapter, GeneratorAdapter, QueueAdapter, chunked
from .feed import (
    AttachedFunction,
    BatchStats,
    ComputingModel,
    FeedDefinition,
    FeedRunReport,
    Framework,
)
from .pipelines import (
    ActiveFeedManager,
    DynamicIngestionPipeline,
    StaticIngestionPipeline,
)
from .udf_operator import UdfEvaluatorOperator, make_invoker
from .updates import CompositeUpdateClient, ReferenceUpdateClient

__all__ = [
    "ActiveFeedManager",
    "AttachedFunction",
    "BatchStats",
    "CompositeUpdateClient",
    "ComputingModel",
    "DynamicIngestionPipeline",
    "FeedAdapter",
    "FeedDefinition",
    "FeedRunReport",
    "FileAdapter",
    "Framework",
    "GeneratorAdapter",
    "QueueAdapter",
    "ReferenceUpdateClient",
    "StaticIngestionPipeline",
    "UdfEvaluatorOperator",
    "chunked",
    "make_invoker",
]
