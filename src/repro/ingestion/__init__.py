"""The IDEA ingestion framework: static vs dynamic pipelines, feeds, AFM."""

from .adapter import (
    ADAPTER_IDLE,
    FeedAdapter,
    FileAdapter,
    GeneratorAdapter,
    QueueAdapter,
    chunked,
    drain_available,
)
from .external import (
    PENDING_FIELD,
    BackfillReport,
    CircuitBreaker,
    EnricherBinding,
    EnrichmentCoordinator,
    ExternalEnricher,
    TokenBucket,
    backfill_pending,
    enrichment_completeness,
)
from .fabric import (
    FeedFabric,
    FeedLaunch,
    FeedSignals,
    MemoryGovernor,
    merge_fault_plans,
)
from .feed import (
    AttachedFunction,
    BatchStats,
    ComputingModel,
    FeedDefinition,
    FeedRunReport,
    Framework,
)
from .pipelines import (
    ActiveFeedManager,
    DynamicIngestionPipeline,
    FeedRunHandle,
    StaticIngestionPipeline,
)
from .policy import (
    CongestionAction,
    ExternalFailureAction,
    FeedPolicy,
    SoftErrorAction,
    SoftErrorHandler,
    ensure_dead_letter_dataset,
)
from .replay import ReplayReport, replay_dead_letters
from .udf_operator import UdfEvaluatorOperator, make_invoker
from .updates import CompositeUpdateClient, ReferenceUpdateClient

__all__ = [
    "ADAPTER_IDLE",
    "ActiveFeedManager",
    "AttachedFunction",
    "BackfillReport",
    "BatchStats",
    "CircuitBreaker",
    "CompositeUpdateClient",
    "ComputingModel",
    "CongestionAction",
    "DynamicIngestionPipeline",
    "EnricherBinding",
    "EnrichmentCoordinator",
    "ExternalEnricher",
    "ExternalFailureAction",
    "FeedAdapter",
    "FeedDefinition",
    "FeedFabric",
    "FeedLaunch",
    "FeedPolicy",
    "FeedRunHandle",
    "FeedRunReport",
    "FeedSignals",
    "FileAdapter",
    "Framework",
    "MemoryGovernor",
    "GeneratorAdapter",
    "PENDING_FIELD",
    "QueueAdapter",
    "ReferenceUpdateClient",
    "ReplayReport",
    "SoftErrorAction",
    "SoftErrorHandler",
    "StaticIngestionPipeline",
    "TokenBucket",
    "UdfEvaluatorOperator",
    "backfill_pending",
    "chunked",
    "drain_available",
    "enrichment_completeness",
    "ensure_dead_letter_dataset",
    "make_invoker",
    "merge_fault_plans",
    "replay_dead_letters",
]
