"""The IDEA ingestion framework: static vs dynamic pipelines, feeds, AFM."""

from .adapter import (
    ADAPTER_IDLE,
    FeedAdapter,
    FileAdapter,
    GeneratorAdapter,
    QueueAdapter,
    chunked,
    drain_available,
)
from .feed import (
    AttachedFunction,
    BatchStats,
    ComputingModel,
    FeedDefinition,
    FeedRunReport,
    Framework,
)
from .pipelines import (
    ActiveFeedManager,
    DynamicIngestionPipeline,
    StaticIngestionPipeline,
)
from .policy import (
    CongestionAction,
    FeedPolicy,
    SoftErrorAction,
    SoftErrorHandler,
    ensure_dead_letter_dataset,
)
from .replay import ReplayReport, replay_dead_letters
from .udf_operator import UdfEvaluatorOperator, make_invoker
from .updates import CompositeUpdateClient, ReferenceUpdateClient

__all__ = [
    "ADAPTER_IDLE",
    "ActiveFeedManager",
    "AttachedFunction",
    "BatchStats",
    "CompositeUpdateClient",
    "ComputingModel",
    "CongestionAction",
    "DynamicIngestionPipeline",
    "FeedAdapter",
    "FeedDefinition",
    "FeedPolicy",
    "FeedRunReport",
    "FileAdapter",
    "Framework",
    "GeneratorAdapter",
    "QueueAdapter",
    "ReferenceUpdateClient",
    "ReplayReport",
    "SoftErrorAction",
    "SoftErrorHandler",
    "StaticIngestionPipeline",
    "UdfEvaluatorOperator",
    "chunked",
    "drain_available",
    "ensure_dead_letter_dataset",
    "make_invoker",
    "replay_dead_letters",
]
